(* Unit tests for lib/obs: counters, histograms, spans, the registry and
   the JSON snapshot format.  The snapshot/JSON round-trip tests are what
   make BENCH_*.json files trustworthy as machine-readable artefacts. *)

module Obs = Ppj_obs
module Counter = Obs.Counter
module Histogram = Obs.Histogram
module Registry = Obs.Registry
module Snapshot = Obs.Snapshot
module Json = Obs.Json
module Clock = Obs.Clock

(* --- Counter semantics --- *)

let test_counter_basics () =
  let c = Counter.create () in
  Alcotest.(check int) "starts at zero" 0 (Counter.value c);
  Counter.incr c;
  Counter.incr c ~by:5;
  Alcotest.(check int) "incr accumulates" 6 (Counter.value c);
  Counter.set_to c 4;
  Alcotest.(check int) "set_to never regresses" 6 (Counter.value c);
  Counter.set_to c 10;
  Alcotest.(check int) "set_to advances" 10 (Counter.value c)

let test_counter_rejects_negative () =
  let c = Counter.create () in
  Alcotest.check_raises "negative increment"
    (Invalid_argument "Counter.incr: negative increment") (fun () -> Counter.incr c ~by:(-1))

(* --- Histogram semantics --- *)

let test_histogram_percentiles () =
  let h = Histogram.create () in
  (* 1..100 in scrambled order: nearest-rank percentiles are exact. *)
  List.iter
    (fun i -> Histogram.observe h (float_of_int (((i * 37) mod 100) + 1)))
    (List.init 100 Fun.id);
  match Histogram.summary h with
  | None -> Alcotest.fail "expected a summary"
  | Some s ->
      Alcotest.(check int) "count" 100 s.Histogram.count;
      Alcotest.(check (float 1e-9)) "min" 1.0 s.Histogram.min;
      Alcotest.(check (float 1e-9)) "max" 100.0 s.Histogram.max;
      Alcotest.(check (float 1e-9)) "mean" 50.5 s.Histogram.mean;
      Alcotest.(check (float 1e-9)) "p50" 50.0 s.Histogram.p50;
      Alcotest.(check (float 1e-9)) "p95" 95.0 s.Histogram.p95;
      Alcotest.(check (float 1e-9)) "p99" 99.0 s.Histogram.p99;
      Alcotest.(check bool) "uncapped is never sampled" false s.Histogram.sampled

let test_histogram_single_observation () =
  let h = Histogram.create () in
  Histogram.observe h 3.25;
  match Histogram.summary h with
  | None -> Alcotest.fail "expected a summary"
  | Some s ->
      Alcotest.(check (float 1e-9)) "p50 = the value" 3.25 s.Histogram.p50;
      Alcotest.(check (float 1e-9)) "p95 = the value" 3.25 s.Histogram.p95;
      Alcotest.(check (float 1e-9)) "p99 = the value" 3.25 s.Histogram.p99

let test_histogram_sorts_negatives () =
  (* Float.compare, not polymorphic compare: mixed-sign values must sort
     numerically. *)
  let h = Histogram.create () in
  List.iter (Histogram.observe h) [ 3.5; -2.0; 0.0; -7.25; 1.0 ];
  match Histogram.summary h with
  | None -> Alcotest.fail "expected a summary"
  | Some s ->
      Alcotest.(check (float 1e-9)) "min" (-7.25) s.Histogram.min;
      Alcotest.(check (float 1e-9)) "max" 3.5 s.Histogram.max;
      Alcotest.(check (float 1e-9)) "p50" 0.0 s.Histogram.p50

let test_histogram_reservoir_cap () =
  let cap = 64 in
  let h = Histogram.create ~cap () in
  for i = 1 to 1000 do
    Histogram.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count is logical, not the sample size" 1000 (Histogram.count h);
  Alcotest.(check bool) "past the cap means sampled" true (Histogram.sampled h);
  match Histogram.summary h with
  | None -> Alcotest.fail "expected a summary"
  | Some s ->
      Alcotest.(check int) "summary count" 1000 s.Histogram.count;
      Alcotest.(check (float 1e-9)) "sum is exact despite sampling" 500500.0 s.Histogram.sum;
      Alcotest.(check (float 1e-9)) "mean is exact despite sampling" 500.5 s.Histogram.mean;
      Alcotest.(check bool) "summary carries the sampled flag" true s.Histogram.sampled;
      (* Algorithm R keeps a uniform sample of 1..1000: percentiles are
         estimates, but must stay inside the observed range. *)
      Alcotest.(check bool) "p50 estimate in range" true (s.Histogram.p50 >= 1.0 && s.Histogram.p50 <= 1000.0)

let test_histogram_reservoir_deterministic () =
  (* The replacement stream is seeded per histogram, not from the global
     [Random]: two identically-fed histograms must sample identically. *)
  let fill () =
    let h = Histogram.create ~cap:16 () in
    for i = 1 to 500 do
      Histogram.observe h (float_of_int ((i * 37) mod 251))
    done;
    Histogram.summary h
  in
  Alcotest.(check bool) "same feed, same reservoir" true (fill () = fill ())

let test_histogram_below_cap_is_exact () =
  let h = Histogram.create ~cap:100 () in
  List.iter (Histogram.observe h) [ 5.0; 1.0; 3.0 ];
  Alcotest.(check bool) "below cap never sampled" false (Histogram.sampled h);
  match Histogram.summary h with
  | Some s -> Alcotest.(check (float 1e-9)) "exact p50" 3.0 s.Histogram.p50
  | None -> Alcotest.fail "expected a summary"

let test_histogram_rejects_bad_cap () =
  Alcotest.check_raises "cap 0" (Invalid_argument "Histogram.create: cap must be >= 1")
    (fun () -> ignore (Histogram.create ~cap:0 ()))

let test_histogram_empty () =
  Alcotest.(check bool) "empty has no summary" true (Histogram.summary (Histogram.create ()) = None)

let test_histogram_rejects_non_finite () =
  let h = Histogram.create () in
  Alcotest.check_raises "nan" (Invalid_argument "Histogram.observe: non-finite value")
    (fun () -> Histogram.observe h Float.nan)

(* --- Spans under a fake clock --- *)

let test_span_measures_elapsed () =
  let t = ref 100.0 in
  Clock.set_source (fun () -> !t);
  Fun.protect ~finally:Clock.reset_source (fun () ->
      let reg = Registry.create () in
      let result = Registry.span reg "phase.seconds" (fun () -> t := !t +. 2.5; 42) in
      Alcotest.(check int) "span is transparent" 42 result;
      match Snapshot.find (Registry.snapshot reg) "phase.seconds" with
      | Some { Snapshot.value = Snapshot.Summary s; _ } ->
          Alcotest.(check (float 1e-9)) "elapsed" 2.5 s.Histogram.p50
      | _ -> Alcotest.fail "span did not record a summary")

let test_span_records_on_raise () =
  let t = ref 0.0 in
  Clock.set_source (fun () -> !t);
  Fun.protect ~finally:Clock.reset_source (fun () ->
      let reg = Registry.create () in
      (try
         Registry.span reg "failing.seconds" (fun () -> t := !t +. 1.0; failwith "boom")
       with Failure _ -> ());
      match Snapshot.find (Registry.snapshot reg) "failing.seconds" with
      | Some { Snapshot.value = Snapshot.Summary s; _ } ->
          Alcotest.(check int) "one observation despite the raise" 1 s.Histogram.count
      | _ -> Alcotest.fail "raised span was not recorded")

(* --- Registry semantics --- *)

let test_registry_memoizes () =
  let reg = Registry.create () in
  Counter.incr (Registry.counter reg "hits") ~by:3;
  Counter.incr (Registry.counter reg "hits") ~by:4;
  match Snapshot.find (Registry.snapshot reg) "hits" with
  | Some { Snapshot.value = Snapshot.Counter v; _ } ->
      Alcotest.(check int) "same name, same instrument" 7 v
  | _ -> Alcotest.fail "counter missing from snapshot"

let test_registry_label_order_is_identity () =
  let reg = Registry.create () in
  Counter.incr (Registry.counter reg ~labels:[ ("a", "1"); ("b", "2") ] "x");
  Counter.incr (Registry.counter reg ~labels:[ ("b", "2"); ("a", "1") ] "x");
  match Registry.snapshot reg with
  | [ { Snapshot.value = Snapshot.Counter 2; _ } ] -> ()
  | snap -> Alcotest.failf "expected one metric at 2, got %a" Snapshot.pp snap

let test_registry_kind_mismatch () =
  let reg = Registry.create () in
  ignore (Registry.counter reg "m");
  Alcotest.(check bool) "histogram over counter raises" true
    (try
       ignore (Registry.histogram reg "m");
       false
     with Invalid_argument _ -> true)

let test_snapshot_order_independent () =
  (* Two registries populated in opposite insertion order must snapshot
     identically — this is what makes BENCH_*.json diffable. *)
  let fill names =
    let reg = Registry.create () in
    List.iter (fun n -> Counter.incr (Registry.counter reg n)) names;
    Registry.snapshot reg
  in
  let a = fill [ "zeta"; "alpha"; "mid" ] and b = fill [ "mid"; "alpha"; "zeta" ] in
  Alcotest.(check bool) "sorted snapshots equal" true (a = b)

(* --- JSON --- *)

let test_json_round_trip () =
  let v =
    Json.Obj
      [ ("s", Json.Str "a \"quoted\"\nline \t with \\ specials");
        ("i", Json.Int 42);
        ("f", Json.Float 1.5);
        ("neg", Json.Int (-7));
        ("null", Json.Null);
        ("flags", Json.List [ Json.Bool true; Json.Bool false ]);
        ("nested", Json.Obj [ ("empty_list", Json.List []); ("empty_obj", Json.Obj []) ])
      ]
  in
  match Json.of_string (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round trip" true (Json.equal v v')
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_float_stays_float () =
  (* 2.0 must not silently become Int 2 across a round trip: gauge metrics
     rely on the distinction. *)
  match Json.of_string (Json.to_string (Json.Float 2.0)) with
  | Ok (Json.Float f) -> Alcotest.(check (float 1e-9)) "value" 2.0 f
  | Ok _ -> Alcotest.fail "float decoded as a different constructor"
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed input %S" s)
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ]

let test_json_unicode_escape () =
  match Json.of_string {|"é\n"|} with
  | Ok (Json.Str s) -> Alcotest.(check string) "utf-8 decode" "\xc3\xa9\n" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.failf "parse failed: %s" e

(* Randomised round trip: any value the generator below can build must
   survive to_string ∘ of_string unchanged.  Floats are drawn finite
   (non-finite serialises as null by design) and strings over the full
   byte range the escaper handles. *)
let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [ return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) (int_range (-1_000_000) 1_000_000);
        map (fun f -> Json.Float f) (float_range (-1e9) 1e9);
        map (fun s -> Json.Str s) (string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 12))
      ]
  in
  let key = string_size ~gen:printable (int_range 0 8) in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then scalar
          else
            frequency
              [ (2, scalar);
                (1, map (fun l -> Json.List l) (list_size (int_range 0 4) (self (n / 2))));
                (1, map (fun kvs -> Json.Obj kvs)
                     (list_size (int_range 0 4) (pair key (self (n / 2)))))
              ])
        (min n 8))

let test_json_random_round_trip () =
  let cell =
    QCheck.Test.make_cell ~count:200 ~name:"json round trip"
      (QCheck.make ~print:Json.to_string json_gen) (fun v ->
        match Json.of_string (Json.to_string v) with
        | Ok v' -> Json.equal v v'
        | Error _ -> false)
  in
  QCheck.Test.check_cell_exn ~rand:(Random.State.make [| 2026 |]) cell

let test_json_rejects_truncated_escapes () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted truncated escape %S" s)
    [ {|"ab\|}; {|"ab\u00|}; {|"ab\u00zz"|}; {|"\q"|}; "\"ab" ]

let test_json_rejects_trailing_garbage () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted trailing garbage in %S" s)
    [ "{} x"; "[1] ]"; "null,"; "42 43" ]

let test_json_nesting_depth () =
  let nested n = String.concat "" (List.init n (Fun.const "[")) ^ String.concat "" (List.init n (Fun.const "]")) in
  (match Json.of_string (nested 100) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "rejected 100-deep nesting: %s" e);
  match Json.of_string (nested 600) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "600-deep nesting accepted: stack-overflow guard missing"

let test_snapshot_json_round_trip () =
  let reg = Registry.create () in
  Counter.incr (Registry.counter reg ~labels:[ ("alg", "alg5") ] "transfers") ~by:123;
  Registry.set_gauge reg "speedup" 2.5;
  let h = Registry.histogram reg ~labels:[ ("phase", "join") ] "seconds" in
  List.iter (Histogram.observe h) [ 0.5; 1.5; 2.5 ];
  let snap = Registry.snapshot reg in
  match Snapshot.of_json (Snapshot.to_json snap) with
  | Ok snap' -> Alcotest.(check bool) "snapshot round trip" true (snap = snap')
  | Error e -> Alcotest.failf "of_json failed: %s" e

let test_snapshot_union_second_wins () =
  let mk v =
    let reg = Registry.create () in
    Counter.incr (Registry.counter reg "n") ~by:v;
    Registry.snapshot reg
  in
  match Snapshot.find (Snapshot.union (mk 1) (mk 9)) "n" with
  | Some { Snapshot.value = Snapshot.Counter 9; _ } -> ()
  | _ -> Alcotest.fail "union did not prefer the second snapshot"

(* --- Histogram.merge --------------------------------------------------- *)

let observe_all h vs = List.iter (Histogram.observe h) vs

let hist_of vs =
  let h = Histogram.create () in
  observe_all h vs;
  h

let summary_exn h =
  match Histogram.summary h with Some s -> s | None -> Alcotest.fail "expected a summary"

let test_histogram_merge_exact_when_unsampled () =
  (* Both sides below the reservoir cap: the merge carries every
     observation, so its summary equals the summary of one histogram
     that saw the concatenation. *)
  let a = hist_of [ 1.; 5.; 9. ] and b = hist_of [ 2.; 4.; 100. ] in
  let m = summary_exn (Histogram.merge a b) in
  let oracle = summary_exn (hist_of [ 1.; 5.; 9.; 2.; 4.; 100. ]) in
  Alcotest.(check int) "count" oracle.Histogram.count m.Histogram.count;
  Alcotest.(check (float 1e-9)) "sum" oracle.Histogram.sum m.Histogram.sum;
  Alcotest.(check (float 1e-9)) "min" oracle.Histogram.min m.Histogram.min;
  Alcotest.(check (float 1e-9)) "max" oracle.Histogram.max m.Histogram.max;
  Alcotest.(check (float 1e-9)) "p50" oracle.Histogram.p50 m.Histogram.p50;
  Alcotest.(check (float 1e-9)) "p95" oracle.Histogram.p95 m.Histogram.p95;
  Alcotest.(check (float 1e-9)) "p99" oracle.Histogram.p99 m.Histogram.p99;
  Alcotest.(check bool) "exact merge is not sampled" false m.Histogram.sampled

let test_histogram_merge_empty_is_copy () =
  let a = hist_of [ 3.; 7. ] and e = Histogram.create () in
  let left = summary_exn (Histogram.merge e a) and right = summary_exn (Histogram.merge a e) in
  List.iter
    (fun s ->
      Alcotest.(check int) "count" 2 s.Histogram.count;
      Alcotest.(check (float 1e-9)) "sum" 10. s.Histogram.sum)
    [ left; right ];
  (* and the merge owns its samples: observing the source later must not
     mutate the merged copy *)
  let m = Histogram.merge e a in
  Histogram.observe a 1000.;
  Alcotest.(check int) "merged copy unaffected" 2 (Histogram.count m)

let test_histogram_merge_count_sum_property () =
  let gen =
    QCheck.Gen.(
      pair
        (list_size (int_range 0 200) (float_range 0. 1e6))
        (list_size (int_range 0 200) (float_range 0. 1e6)))
  in
  let cell =
    QCheck.Test.make_cell ~count:100 ~name:"merge preserves count and sum"
      (QCheck.make gen) (fun (xs, ys) ->
        let m = Histogram.merge (hist_of xs) (hist_of ys) in
        let n = List.length xs + List.length ys in
        Histogram.count m = n
        &&
        let want = List.fold_left ( +. ) 0. xs +. List.fold_left ( +. ) 0. ys in
        abs_float (Histogram.sum m -. want) <= 1e-6 *. (1. +. abs_float want))
  in
  QCheck.Test.check_cell_exn ~rand:(Random.State.make [| 71 |]) cell

let test_histogram_merge_sampled_quantile_tolerance () =
  (* Capped reservoirs: the merged quantiles are estimates, but count and
     sum stay exact, and quantile estimates stay inside the observed
     range with sane ordering. *)
  let a = Histogram.create ~cap:64 () and b = Histogram.create ~cap:64 () in
  for i = 1 to 1000 do
    Histogram.observe a (float_of_int i)
  done;
  for i = 1001 to 2000 do
    Histogram.observe b (float_of_int i)
  done;
  let s = summary_exn (Histogram.merge a b) in
  Alcotest.(check int) "count exact" 2000 s.Histogram.count;
  Alcotest.(check (float 1e-6)) "sum exact" 2001000. s.Histogram.sum;
  Alcotest.(check bool) "sampled" true s.Histogram.sampled;
  Alcotest.(check bool) "p50 ordered" true (s.Histogram.p50 <= s.Histogram.p95);
  Alcotest.(check bool) "p95 ordered" true (s.Histogram.p95 <= s.Histogram.p99);
  (* both reservoirs are uniform over their half: the median of the union
     must land near 1000 (loose bound, deterministic seed) *)
  Alcotest.(check bool) "p50 plausible" true
    (s.Histogram.p50 > 500. && s.Histogram.p50 < 1500.);
  Alcotest.(check bool) "p99 in range" true
    (s.Histogram.p99 >= 1. && s.Histogram.p99 <= 2000.)

(* --- Snapshot.merge ---------------------------------------------------- *)

let test_snapshot_merge_values () =
  let mk c g hs =
    let reg = Registry.create () in
    Counter.incr (Registry.counter reg "joins") ~by:c;
    Registry.set_gauge reg "depth" g;
    observe_all (Registry.histogram reg "lat") hs;
    Registry.snapshot reg
  in
  let m = Snapshot.merge (mk 3 5. [ 1.; 2. ]) (mk 4 2. [ 3. ]) in
  (match Snapshot.find m "joins" with
  | Some { Snapshot.value = Snapshot.Counter 7; _ } -> ()
  | _ -> Alcotest.fail "counters must add");
  (match Snapshot.find m "depth" with
  | Some { Snapshot.value = Snapshot.Gauge g; _ } -> Alcotest.(check (float 1e-9)) "gauge max" 5. g
  | _ -> Alcotest.fail "gauge missing");
  match Snapshot.find m "lat" with
  | Some { Snapshot.value = Snapshot.Summary s; _ } ->
      Alcotest.(check int) "summary counts add" 3 s.Histogram.count;
      Alcotest.(check (float 1e-9)) "summary sums add" 6. s.Histogram.sum;
      Alcotest.(check (float 1e-9)) "merged p99" 3. s.Histogram.p99
  | _ -> Alcotest.fail "summary missing"

let test_snapshot_merge_kind_mismatch_raises () =
  let c =
    let reg = Registry.create () in
    Counter.incr (Registry.counter reg "x");
    Registry.snapshot reg
  in
  let g =
    let reg = Registry.create () in
    Registry.set_gauge reg "x" 1.;
    Registry.snapshot reg
  in
  match Snapshot.merge c g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch must raise"

let test_snapshot_merge_disjoint_union_laws () =
  (* Label-disjoint snapshots (each carries its own shard label): merge
     is their union, associative and commutative. *)
  let mk k =
    let reg = Registry.create () in
    Counter.incr (Registry.counter reg ~labels:[ ("shard", string_of_int k) ] "transfers")
      ~by:(10 + k);
    Registry.set_gauge reg ~labels:[ ("shard", string_of_int k) ] "pad" (float_of_int k);
    Registry.snapshot reg
  in
  let a = mk 0 and b = mk 1 and c = mk 2 in
  let l = Snapshot.merge (Snapshot.merge a b) c in
  let r = Snapshot.merge a (Snapshot.merge b c) in
  Alcotest.(check bool) "associative" true (l = r);
  Alcotest.(check bool) "commutative" true (Snapshot.merge a b = Snapshot.merge b a);
  Alcotest.(check int) "all series present" 6 (List.length l)

let test_snapshot_relabel () =
  let reg = Registry.create () in
  Counter.incr (Registry.counter reg "plain");
  Counter.incr (Registry.counter reg ~labels:[ ("shard", "9") ] "owned");
  let s = Snapshot.relabel ("shard", "2") (Registry.snapshot reg) in
  (match Snapshot.find ~labels:[ ("shard", "2") ] s "plain" with
  | Some _ -> ()
  | None -> Alcotest.fail "plain metric should gain the label");
  match Snapshot.find ~labels:[ ("shard", "9") ] s "owned" with
  | Some _ -> ()
  | None -> Alcotest.fail "existing shard label must be preserved"

(* --- snapshot JSON: samples, duplicates, prometheus -------------------- *)

let test_snapshot_samples_round_trip () =
  let reg = Registry.create () in
  observe_all (Registry.histogram reg "lat") [ 0.25; 0.5; 4.0 ];
  let snap = Registry.snapshot reg in
  (match snap with
  | [ { Snapshot.value = Snapshot.Summary s; _ } ] ->
      Alcotest.(check int) "samples exported" 3 (Array.length s.Histogram.samples)
  | _ -> Alcotest.fail "expected one summary");
  match Snapshot.of_json (Snapshot.to_json snap) with
  | Ok snap' -> Alcotest.(check bool) "samples survive round trip" true (snap = snap')
  | Error e -> Alcotest.failf "of_json failed: %s" e

let test_snapshot_rejects_duplicates () =
  let dup =
    Json.Obj
      [ ("schema", Json.Str "ppj.obs/1");
        ( "metrics",
          Json.List
            [ Json.Obj
                [ ("name", Json.Str "n");
                  ("labels", Json.Obj [ ("a", Json.Str "1") ]);
                  ("kind", Json.Str "counter");
                  ("value", Json.Int 1)
                ];
              Json.Obj
                [ ("name", Json.Str "n");
                  ("labels", Json.Obj [ ("a", Json.Str "1") ]);
                  ("kind", Json.Str "counter");
                  ("value", Json.Int 2)
                ]
            ] )
      ]
  in
  match Snapshot.of_json dup with
  | Error e -> Alcotest.(check bool) "names the duplicate" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "duplicate (name,labels) accepted"

let snapshot_gen =
  (* Random well-formed snapshots, including merged/prometheus shapes:
     label sets with shard labels, counters, gauges, and summaries with
     sample arrays. *)
  let open QCheck.Gen in
  let name = oneofl [ "net.server.joins"; "store.epoch"; "lat.seconds"; "pad_slots"; "x" ] in
  let labels =
    oneof
      [ return [];
        map (fun k -> [ ("shard", string_of_int k) ]) (int_range 0 7);
        map (fun (k, r) -> [ ("region", r); ("shard", string_of_int k) ])
          (pair (int_range 0 7) (oneofl [ "heap"; "scratch" ]))
      ]
  in
  let metric =
    map
      (fun ((n, ls), vs) ->
        let reg = Registry.create () in
        (match vs with
        | `C v -> Counter.incr (Registry.counter reg ~labels:ls n) ~by:v
        | `G v -> Registry.set_gauge reg ~labels:ls n v
        | `S obs -> observe_all (Registry.histogram reg ~labels:ls n) obs);
        Registry.snapshot reg)
      (pair (pair name labels)
         (oneof
            [ map (fun v -> `C v) (int_range 0 1000);
              map (fun v -> `G v) (float_range (-1e3) 1e3);
              map (fun o -> `S o) (list_size (int_range 1 40) (float_range 0. 100.))
            ]))
  in
  map
    (fun parts -> List.fold_left Snapshot.union Snapshot.empty parts)
    (list_size (int_range 0 10) metric)

let test_snapshot_fuzz_round_trip_and_prometheus () =
  let cell =
    QCheck.Test.make_cell ~count:200 ~name:"snapshot fuzz"
      (QCheck.make snapshot_gen) (fun snap ->
        (match Snapshot.of_json (Snapshot.to_json snap) with
        | Ok snap' -> snap = snap'
        | Error _ -> false)
        &&
        (* exposition must be total and well-typed on anything we emit *)
        let prom = Snapshot.to_prometheus snap in
        (snap = [] && prom = "") || String.length prom > 0)
  in
  QCheck.Test.check_cell_exn ~rand:(Random.State.make [| 90 |]) cell

let test_prometheus_format () =
  let reg = Registry.create () in
  Counter.incr (Registry.counter reg ~labels:[ ("alg", "alg\"5\"") ] "net.joins") ~by:2;
  Registry.set_gauge reg "build.info" 1.;
  observe_all (Registry.histogram reg "lat.seconds") [ 0.5; 1.5 ];
  let prom = Snapshot.to_prometheus (Registry.snapshot reg) in
  List.iter
    (fun needle ->
      let n = String.length needle and m = String.length prom in
      let rec go i = i + n <= m && (String.sub prom i n = needle || go (i + 1)) in
      Alcotest.(check bool) (Printf.sprintf "contains %s" needle) true (n = 0 || go 0))
    [ "# TYPE ppj_build_info gauge";
      "ppj_build_info 1";
      "# TYPE ppj_net_joins counter";
      {|ppj_net_joins{alg="alg\"5\""} 2|};
      "# TYPE ppj_lat_seconds summary";
      {|ppj_lat_seconds{quantile="0.5"}|};
      "ppj_lat_seconds_count 2"
    ]

let () =
  Alcotest.run "obs"
    [ ( "counter",
        [ Alcotest.test_case "basics" `Quick test_counter_basics;
          Alcotest.test_case "rejects negative" `Quick test_counter_rejects_negative
        ] );
      ( "histogram",
        [ Alcotest.test_case "percentiles 1..100" `Quick test_histogram_percentiles;
          Alcotest.test_case "single observation" `Quick test_histogram_single_observation;
          Alcotest.test_case "empty" `Quick test_histogram_empty;
          Alcotest.test_case "rejects non-finite" `Quick test_histogram_rejects_non_finite;
          Alcotest.test_case "sorts negatives" `Quick test_histogram_sorts_negatives;
          Alcotest.test_case "reservoir cap" `Quick test_histogram_reservoir_cap;
          Alcotest.test_case "reservoir deterministic" `Quick test_histogram_reservoir_deterministic;
          Alcotest.test_case "below cap exact" `Quick test_histogram_below_cap_is_exact;
          Alcotest.test_case "rejects bad cap" `Quick test_histogram_rejects_bad_cap
        ] );
      ( "span",
        [ Alcotest.test_case "measures elapsed" `Quick test_span_measures_elapsed;
          Alcotest.test_case "records on raise" `Quick test_span_records_on_raise
        ] );
      ( "registry",
        [ Alcotest.test_case "memoizes" `Quick test_registry_memoizes;
          Alcotest.test_case "label order" `Quick test_registry_label_order_is_identity;
          Alcotest.test_case "kind mismatch" `Quick test_registry_kind_mismatch;
          Alcotest.test_case "snapshot order-independent" `Quick test_snapshot_order_independent
        ] );
      ( "json",
        [ Alcotest.test_case "round trip" `Quick test_json_round_trip;
          Alcotest.test_case "float stays float" `Quick test_json_float_stays_float;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "unicode escape" `Quick test_json_unicode_escape;
          Alcotest.test_case "random round trip" `Quick test_json_random_round_trip;
          Alcotest.test_case "truncated escapes" `Quick test_json_rejects_truncated_escapes;
          Alcotest.test_case "trailing garbage" `Quick test_json_rejects_trailing_garbage;
          Alcotest.test_case "nesting depth guard" `Quick test_json_nesting_depth;
          Alcotest.test_case "snapshot round trip" `Quick test_snapshot_json_round_trip;
          Alcotest.test_case "union second wins" `Quick test_snapshot_union_second_wins
        ] );
      ( "merge",
        [ Alcotest.test_case "exact when unsampled" `Quick test_histogram_merge_exact_when_unsampled;
          Alcotest.test_case "empty is copy" `Quick test_histogram_merge_empty_is_copy;
          Alcotest.test_case "count/sum property" `Quick test_histogram_merge_count_sum_property;
          Alcotest.test_case "sampled tolerance" `Quick test_histogram_merge_sampled_quantile_tolerance;
          Alcotest.test_case "snapshot values" `Quick test_snapshot_merge_values;
          Alcotest.test_case "kind mismatch raises" `Quick test_snapshot_merge_kind_mismatch_raises;
          Alcotest.test_case "disjoint union laws" `Quick test_snapshot_merge_disjoint_union_laws;
          Alcotest.test_case "relabel" `Quick test_snapshot_relabel
        ] );
      ( "export",
        [ Alcotest.test_case "samples round trip" `Quick test_snapshot_samples_round_trip;
          Alcotest.test_case "rejects duplicates" `Quick test_snapshot_rejects_duplicates;
          Alcotest.test_case "fuzz round trip + prometheus" `Quick test_snapshot_fuzz_round_trip_and_prometheus;
          Alcotest.test_case "prometheus format" `Quick test_prometheus_format
        ] )
    ]
