(* Chapter 5 algorithms (4, 5, 6): correctness, cost shape, the M >= S
   and epsilon = 0 corners, blemish handling, multi-way joins, and the
   hypergeometric machinery. *)

open Ppj_core
module W = Ppj_relation.Workload
module P = Ppj_relation.Predicate
module T = Ppj_relation.Tuple
module Rng = Ppj_crypto.Rng

let qtest name ?(count = 30) arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

let tuple_set l = List.sort compare (List.map (fun t -> Format.asprintf "%a" T.pp t) l)
let same_results got want = tuple_set got = tuple_set want

let mk ?(m = 4) ?(seed = 7) pred rels = Instance.create ~m ~seed ~predicate:pred rels

let equi ?(seed = 19) ?(na = 10) ?(nb = 16) ?(matches = 12) ?(mult = 3) ?(m = 4) () =
  let rng = Rng.create seed in
  let a, b = W.equijoin_pair rng ~na ~nb ~matches ~max_multiplicity:mult in
  mk ~m (P.equijoin2 "key" "key") [ a; b ]

(* --- Hypergeometric machinery --- *)

let test_pmf_sums_to_one () =
  List.iter
    (fun (l, s, n) ->
      let total = ref 0. in
      for k = 0 to n do
        total := !total +. Hypergeom.pmf ~l ~s ~n ~k
      done;
      Alcotest.(check (float 1e-9)) (Printf.sprintf "L=%d S=%d n=%d" l s n) 1. !total)
    [ (50, 10, 8); (100, 3, 40); (30, 30, 10); (64, 1, 64) ]

let test_cdf_plus_tail () =
  let l, s, n = (200, 40, 30) in
  List.iter
    (fun m ->
      Alcotest.(check (float 1e-9)) (Printf.sprintf "m=%d" m) 1.
        (Hypergeom.cdf_le ~l ~s ~n ~m +. Hypergeom.tail_gt ~l ~s ~n ~m))
    [ 0; 1; 5; 15; 30 ]

let test_pmf_against_exact_small () =
  (* Hand check: L=10, S=4, n=3, k=2: C(4,2)C(6,1)/C(10,3) = 36/120. *)
  Alcotest.(check (float 1e-9)) "exact" (36. /. 120.) (Hypergeom.pmf ~l:10 ~s:4 ~n:3 ~k:2)

let test_tail_certain_overflow () =
  (* n = L forces x(n) = S, so for M < S the tail is 1 (the regression
     that motivated mode-aware summation). *)
  Alcotest.(check (float 1e-9)) "certain" 1. (Hypergeom.tail_gt ~l:100 ~s:20 ~n:100 ~m:10)

let test_n_star_eps0_is_m () =
  Alcotest.(check int) "n*(0) = M" 8 (Hypergeom.n_star ~l:1000 ~s:50 ~m:8 ~eps:0.)

let test_n_star_m_ge_s_is_l () =
  Alcotest.(check int) "n* = L" 1000 (Hypergeom.n_star ~l:1000 ~s:5 ~m:10 ~eps:1e-20)

let test_n_star_monotone_in_eps () =
  let l, s, m = (640_000, 6_400, 64) in
  let n20 = Hypergeom.n_star ~l ~s ~m ~eps:1e-20 in
  let n10 = Hypergeom.n_star ~l ~s ~m ~eps:1e-10 in
  let n5 = Hypergeom.n_star ~l ~s ~m ~eps:1e-5 in
  Alcotest.(check bool) "larger eps, larger n*" true (n20 < n10 && n10 < n5);
  Alcotest.(check bool) "bound holds at n*" true
    (Hypergeom.blemish_bound ~l ~s ~n:n20 ~m <= 1e-20);
  Alcotest.(check bool) "bound broken just above" true
    (Hypergeom.blemish_bound ~l ~s ~n:(n20 + max 1 (n20 / 50)) ~m > 1e-20)

let test_n_star_monotone_in_m () =
  let l, s = (640_000, 6_400) in
  let n64 = Hypergeom.n_star ~l ~s ~m:64 ~eps:1e-20 in
  let n256 = Hypergeom.n_star ~l ~s ~m:256 ~eps:1e-20 in
  Alcotest.(check bool) "larger memory, larger segments" true (n64 < n256)

let test_pmf_monte_carlo () =
  (* Validate the analytic hypergeometric against direct sampling-without-
     replacement simulation. *)
  let l, s, n = (40, 12, 10) in
  let trials = 20_000 in
  let st = Random.State.make [| 97 |] in
  let counts = Array.make (n + 1) 0 in
  let pool = Array.init l (fun i -> i < s) in
  for _ = 1 to trials do
    (* partial Fisher-Yates: draw n without replacement *)
    let a = Array.copy pool in
    let k = ref 0 in
    for i = 0 to n - 1 do
      let j = i + Random.State.int st (l - i) in
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t;
      if a.(i) then incr k
    done;
    counts.(!k) <- counts.(!k) + 1
  done;
  for k = 0 to n do
    let empirical = float_of_int counts.(k) /. float_of_int trials in
    let analytic = Hypergeom.pmf ~l ~s ~n ~k in
    (* 3-sigma band for a binomial proportion *)
    let sigma = sqrt (analytic *. (1. -. analytic) /. float_of_int trials) in
    if Float.abs (empirical -. analytic) > (4. *. sigma) +. 0.002 then
      Alcotest.failf "k=%d: empirical %.4f vs analytic %.4f" k empirical analytic
  done

let test_blemish_rate_within_bound () =
  (* Run Algorithm 6 many times on random same-shape data with a lax
     epsilon and check the observed blemish frequency respects the union
     bound (it should be well below: the bound is loose). *)
  let eps = 0.5 in
  let trials = 60 in
  let blemishes = ref 0 in
  for t = 1 to trials do
    let rng = Rng.create (9000 + t) in
    let a = W.uniform rng ~name:"A" ~n:6 ~key_domain:4 in
    let b = W.uniform rng ~name:"B" ~n:8 ~key_domain:4 in
    let inst = mk ~m:3 (P.equijoin2 "key" "key") [ a; b ] in
    let _, st = Algorithm6.run inst ~eps ~salvage:false () in
    if st.Algorithm6.blemished then incr blemishes
  done;
  let rate = float_of_int !blemishes /. float_of_int trials in
  (* Union bound eps = 0.5 plus generous sampling slack. *)
  Alcotest.(check bool)
    (Printf.sprintf "rate %.2f within bound" rate)
    true (rate <= eps +. 0.25)

(* --- Algorithm 4 --- *)

let test_alg4_correct () =
  let inst = equi () in
  let r = Algorithm4.run inst () in
  Alcotest.(check bool) "oracle" true (same_results r.Report.results (Instance.oracle inst))

let test_alg4_exact_output () =
  (* Definition 3 requires the exact S results, no padding on disk beyond
     the oblivious filter's buffer — the recipient sees exactly S reals. *)
  let inst = equi ~matches:9 () in
  let r = Algorithm4.run inst () in
  Alcotest.(check int) "exactly S reals" 9 (List.length r.Report.results)

let test_alg4_empty () =
  let inst = equi ~matches:0 ~mult:1 () in
  let r = Algorithm4.run inst () in
  Alcotest.(check int) "no results" 0 (List.length r.Report.results);
  (* Still 2L transfers: L reads + L oTuple writes. *)
  Alcotest.(check int) "2L transfers" (2 * Instance.l inst) r.Report.transfers

let test_alg4_write_pattern_covers_all () =
  let inst = equi () in
  let l = Instance.l inst in
  let r = Algorithm4.run inst () in
  (* At least one write per iTuple: reads = writes in the main pass. *)
  Alcotest.(check bool) "writes >= L" true (r.Report.writes >= l)

let test_alg4_all_match () =
  (* S = L: every iTuple joins (cross product via constant-true). *)
  let rng = Rng.create 3 in
  let a = W.uniform rng ~name:"A" ~n:4 ~key_domain:3 in
  let b = W.uniform rng ~name:"B" ~n:5 ~key_domain:3 in
  let inst = mk (P.make ~name:"true" (fun _ -> true)) [ a; b ] in
  let r = Algorithm4.run inst () in
  Alcotest.(check int) "S = L" 20 (List.length r.Report.results)

let prop_alg4_random =
  qtest "alg4 on random workloads" QCheck.(int_range 0 400) (fun seed ->
      let rng = Rng.create (seed + 5000) in
      let a = W.uniform rng ~name:"A" ~n:6 ~key_domain:5 in
      let b = W.uniform rng ~name:"B" ~n:7 ~key_domain:5 in
      let inst = mk (P.equijoin2 "key" "key") [ a; b ] in
      same_results (Algorithm4.run inst ()).Report.results (Instance.oracle inst))

(* --- Algorithm 5 --- *)

let test_alg5_correct () =
  let inst = equi ~m:5 () in
  let r = Algorithm5.run inst in
  Alcotest.(check bool) "oracle" true (same_results r.Report.results (Instance.oracle inst))

let test_alg5_scan_count () =
  (* scans = ceil(S/M). *)
  List.iter
    (fun (m, want) ->
      let inst = equi ~matches:12 ~m () in
      let r = Algorithm5.run inst in
      Alcotest.(check (float 0.)) (Printf.sprintf "M=%d" m) (float_of_int want)
        (Report.stat r "scans"))
    [ (1, 12); (2, 6); (5, 3); (12, 1); (100, 1) ]

let test_alg5_write_cost_is_s () =
  let inst = equi ~matches:12 ~m:5 () in
  let r = Algorithm5.run inst in
  Alcotest.(check int) "writes = S" 12 r.Report.writes;
  Alcotest.(check int) "disk = S" 12 r.Report.disk_tuples

let test_alg5_read_cost () =
  let inst = equi ~matches:12 ~m:5 () in
  let l = Instance.l inst in
  let r = Algorithm5.run inst in
  Alcotest.(check int) "reads = ceil(S/M) L" (3 * l) r.Report.reads

let test_alg5_empty () =
  let inst = equi ~matches:0 ~mult:1 ~m:5 () in
  let r = Algorithm5.run inst in
  Alcotest.(check int) "no results" 0 (List.length r.Report.results);
  Alcotest.(check (float 0.)) "one scan" 1. (Report.stat r "scans")

let prop_alg5_random =
  qtest "alg5 on random workloads and memories"
    QCheck.(pair (int_range 1 6) (int_range 0 400))
    (fun (m, seed) ->
      let rng = Rng.create (seed + 6000) in
      let a = W.uniform rng ~name:"A" ~n:5 ~key_domain:4 in
      let b = W.uniform rng ~name:"B" ~n:6 ~key_domain:4 in
      let inst = mk ~m (P.equijoin2 "key" "key") [ a; b ] in
      same_results (Algorithm5.run inst).Report.results (Instance.oracle inst))

(* --- Algorithm 6 --- *)

let test_alg6_correct () =
  let inst = equi ~m:5 () in
  let r, st = Algorithm6.run inst ~eps:1e-12 () in
  Alcotest.(check bool) "oracle" true (same_results r.Report.results (Instance.oracle inst));
  Alcotest.(check bool) "no blemish at tiny eps" false st.Algorithm6.blemished

let test_alg6_m_ge_s_shortcut () =
  (* Footnote 1: everything fits during screening; cost L + S. *)
  let inst = equi ~matches:3 ~mult:1 ~m:8 () in
  let l = Instance.l inst in
  let r, st = Algorithm6.run inst ~eps:1e-12 () in
  Alcotest.(check int) "L + S transfers" (l + 3) r.Report.transfers;
  Alcotest.(check int) "one segment" 1 st.Algorithm6.segments;
  Alcotest.(check int) "results" 3 (List.length r.Report.results)

let test_alg6_eps0_degenerates () =
  (* ε = 0 forces n* = M. *)
  let inst = equi ~matches:12 ~m:2 () in
  let _, st = Algorithm6.run inst ~eps:0. () in
  Alcotest.(check int) "n* = M" 2 st.Algorithm6.n_star;
  Alcotest.(check bool) "never blemishes" false st.Algorithm6.blemished

let test_alg6_empty () =
  let inst = equi ~matches:0 ~mult:1 ~m:4 () in
  let r, st = Algorithm6.run inst ~eps:1e-12 () in
  Alcotest.(check int) "no results" 0 (List.length r.Report.results);
  Alcotest.(check int) "no segments" 0 st.Algorithm6.segments

let test_alg6_segment_structure () =
  let inst = equi ~matches:12 ~m:2 () in
  let l = Instance.l inst in
  let _, st = Algorithm6.run inst ~eps:1e-12 () in
  Alcotest.(check int) "segments = ceil(L/n*)"
    ((l + st.Algorithm6.n_star - 1) / st.Algorithm6.n_star)
    st.Algorithm6.segments

let test_alg6_blemish_salvage () =
  (* Force a blemish: memory 1, segments of nearly everything, dense
     matches — then the Algorithm 5 salvage must restore correctness. *)
  let rng = Rng.create 47 in
  let a, b = W.skewed_worst_case rng ~na:4 ~nb:8 in
  let inst = mk ~m:1 (P.equijoin2 "key" "key") [ a; b ] in
  let r, st = Algorithm6.run inst ~eps:0.9999999 () in
  Alcotest.(check bool) "blemished" true st.Algorithm6.blemished;
  Alcotest.(check bool) "salvaged" true st.Algorithm6.salvaged;
  Alcotest.(check bool) "still correct" true
    (same_results r.Report.results (Instance.oracle inst))

let test_alg6_blemish_without_salvage_loses_results () =
  let rng = Rng.create 47 in
  let a, b = W.skewed_worst_case rng ~na:4 ~nb:8 in
  let inst = mk ~m:1 (P.equijoin2 "key" "key") [ a; b ] in
  let r, st = Algorithm6.run inst ~eps:0.9999999 ~salvage:false () in
  Alcotest.(check bool) "blemished" true st.Algorithm6.blemished;
  Alcotest.(check bool) "incomplete" true
    (List.length r.Report.results < List.length (Instance.oracle inst))

let test_alg6_eps_bounds () =
  let inst = equi () in
  Alcotest.check_raises "eps > 1" (Invalid_argument "Algorithm6: eps must be in [0, 1]")
    (fun () -> ignore (Algorithm6.run inst ~eps:1.5 ()))

let prop_alg6_random =
  qtest "alg6 on random workloads" QCheck.(pair (int_range 2 5) (int_range 0 300))
    (fun (m, seed) ->
      let rng = Rng.create (seed + 7000) in
      let a = W.uniform rng ~name:"A" ~n:5 ~key_domain:4 in
      let b = W.uniform rng ~name:"B" ~n:6 ~key_domain:4 in
      let inst = mk ~m (P.equijoin2 "key" "key") [ a; b ] in
      let r, _ = Algorithm6.run inst ~eps:1e-12 () in
      same_results r.Report.results (Instance.oracle inst))

(* --- Algorithm 7: sort-based oblivious PK-FK equijoin (extension) --- *)

let test_alg7_correct () =
  let inst = equi ~na:12 ~nb:20 ~matches:15 ~mult:3 () in
  let r, st = Algorithm7.run inst ~attr_a:"key" ~attr_b:"key" in
  Alcotest.(check bool) "oracle" true (same_results r.Report.results (Instance.oracle inst));
  Alcotest.(check bool) "pk respected" false st.Algorithm7.pk_violated;
  Alcotest.(check int) "S" 15 st.Algorithm7.s

let test_alg7_empty () =
  let inst = equi ~matches:0 ~mult:1 () in
  let r, _ = Algorithm7.run inst ~attr_a:"key" ~attr_b:"key" in
  Alcotest.(check int) "empty" 0 (List.length r.Report.results)

let test_alg7_cheaper_than_alg5 () =
  (* The point of the extension: no cartesian product.  The gap is
     asymptotic ((|A|+|B|) log-squared vs ceil(S/M)|A||B|), so measure at
     a size where the log-squared constant no longer dominates. *)
  let mk () = equi ~na:40 ~nb:60 ~matches:48 ~m:2 () in
  let r7, _ = Algorithm7.run (mk ()) ~attr_a:"key" ~attr_b:"key" in
  let r5 = Algorithm5.run (mk ()) in
  Alcotest.(check bool) "at least 2x cheaper" true
    (2 * r7.Report.transfers < r5.Report.transfers)

let test_alg7_detects_pk_violation () =
  let rng = Rng.create 83 in
  let a, b = W.skewed_worst_case rng ~na:4 ~nb:6 in
  (* Duplicate the hot key inside A. *)
  let a2 =
    Ppj_relation.Relation.of_array ~name:"A" a.Ppj_relation.Relation.schema
      (Array.map
         (fun t ->
           Ppj_relation.Tuple.make a.Ppj_relation.Relation.schema
             [ t.Ppj_relation.Tuple.values.(0); Ppj_relation.Value.Int 0;
               t.Ppj_relation.Tuple.values.(2) ])
         a.Ppj_relation.Relation.tuples)
  in
  let inst = mk (P.equijoin2 "key" "key") [ a2; b ] in
  let _, st = Algorithm7.run inst ~attr_a:"key" ~attr_b:"key" in
  Alcotest.(check bool) "violation flagged" true st.Algorithm7.pk_violated

let test_alg7_private () =
  (* Definition 3 on the PK-FK promise: same shape, same S, same trace. *)
  let run data_seed =
    let rng = Rng.create data_seed in
    let a, b = W.equijoin_pair rng ~na:8 ~nb:12 ~matches:9 ~max_multiplicity:3 in
    let inst = Instance.create ~m:3 ~seed:1234 ~predicate:(P.equijoin2 "key" "key") [ a; b ] in
    ignore (Algorithm7.run inst ~attr_a:"key" ~attr_b:"key");
    Ppj_scpu.Coprocessor.trace (Instance.co inst)
  in
  match Privacy.compare_traces [ run 1; run 2; run 3 ] with
  | Privacy.Indistinguishable -> ()
  | v -> Alcotest.failf "%a" Privacy.pp_verdict v

let prop_alg7_random =
  qtest "alg7 on random PK-FK workloads" ~count:30
    QCheck.(pair (int_range 1 15) (int_range 0 300))
    (fun (matches, seed) ->
      let rng = Rng.create (seed + 11000) in
      let na = 8 and nb = 15 in
      let matches = min matches (min nb (na * 3)) in
      let a, b = W.equijoin_pair rng ~na ~nb ~matches ~max_multiplicity:3 in
      let inst = mk (P.equijoin2 "key" "key") [ a; b ] in
      let r, st = Algorithm7.run inst ~attr_a:"key" ~attr_b:"key" in
      (not st.Algorithm7.pk_violated)
      && same_results r.Report.results (Instance.oracle inst))

(* --- Algorithm 8: sort-based oblivious many-to-many equi-join --- *)

let test_alg8_correct () =
  let inst = equi ~na:12 ~nb:20 ~matches:15 ~mult:3 () in
  let r, st = Algorithm8.run inst ~attr_a:"key" ~attr_b:"key" in
  Alcotest.(check bool) "oracle" true (same_results r.Report.results (Instance.oracle inst));
  Alcotest.(check int) "S" 15 st.Algorithm8.s

let test_alg8_empty () =
  let inst = equi ~matches:0 ~mult:1 () in
  let r, st = Algorithm8.run inst ~attr_a:"key" ~attr_b:"key" in
  Alcotest.(check int) "S = 0" 0 st.Algorithm8.s;
  Alcotest.(check int) "empty" 0 (List.length r.Report.results)

let test_alg8_many_to_many () =
  (* Duplicate keys on BOTH sides — the case Algorithm 7 refuses.  A
     narrow key domain forces multi-tuple runs in A and B alike. *)
  let rng = Rng.create 97 in
  let a = W.uniform rng ~name:"A" ~n:9 ~key_domain:3 in
  let b = W.uniform rng ~name:"B" ~n:11 ~key_domain:3 in
  let inst = mk (P.equijoin2 "key" "key") [ a; b ] in
  let oracle = Instance.oracle inst in
  let r, st = Algorithm8.run inst ~attr_a:"key" ~attr_b:"key" in
  Alcotest.(check bool) "oracle" true (same_results r.Report.results oracle);
  Alcotest.(check int) "S = |oracle|" (List.length oracle) st.Algorithm8.s

let test_alg8_sharded_slices_union () =
  (* Running the slice entry point on p fresh replicas must partition
     the join: slices are disjoint by construction (result-rank ranges)
     and their union is the full oracle. *)
  let p = 3 in
  let fresh () =
    let rng = Rng.create 101 in
    let a = W.uniform rng ~name:"A" ~n:8 ~key_domain:3 in
    let b = W.uniform rng ~name:"B" ~n:10 ~key_domain:3 in
    mk (P.equijoin2 "key" "key") [ a; b ]
  in
  let oracle = Instance.oracle (fresh ()) in
  let slices =
    List.init p (fun k ->
        let inst = fresh () in
        let (_ : Algorithm8.stats) =
          Algorithm8.run_slice inst ~attr_a:"key" ~attr_b:"key" ~k ~p
        in
        (Report.collect inst ()).Report.results)
  in
  let sizes = List.map List.length slices in
  Alcotest.(check int) "slice sizes sum to S" (List.length oracle) (List.fold_left ( + ) 0 sizes);
  Alcotest.(check bool) "union = oracle" true (same_results (List.concat slices) oracle)

let test_alg8_private () =
  (* Definition 3: same shape, same S, same trace — duplicates allowed. *)
  let run data_seed =
    let rng = Rng.create data_seed in
    let a, b = W.equijoin_pair rng ~na:8 ~nb:12 ~matches:9 ~max_multiplicity:3 in
    let inst = Instance.create ~m:3 ~seed:1234 ~predicate:(P.equijoin2 "key" "key") [ a; b ] in
    ignore (Algorithm8.run inst ~attr_a:"key" ~attr_b:"key");
    Ppj_scpu.Coprocessor.trace (Instance.co inst)
  in
  match Privacy.compare_traces [ run 1; run 2; run 3 ] with
  | Privacy.Indistinguishable -> ()
  | v -> Alcotest.failf "%a" Privacy.pp_verdict v

let prop_alg8_random =
  qtest "alg8 on random many-to-many workloads" ~count:30
    QCheck.(pair (int_range 2 6) (int_range 0 300))
    (fun (key_domain, seed) ->
      let rng = Rng.create (seed + 13000) in
      let a = W.uniform rng ~name:"A" ~n:7 ~key_domain in
      let b = W.uniform rng ~name:"B" ~n:9 ~key_domain in
      let inst = mk (P.equijoin2 "key" "key") [ a; b ] in
      let r, st = Algorithm8.run inst ~attr_a:"key" ~attr_b:"key" in
      let oracle = Instance.oracle inst in
      st.Algorithm8.s = List.length oracle && same_results r.Report.results oracle)

(* --- Multi-way joins (Definition 3 is m-way) --- *)

let three_way_instance ?(m = 4) () =
  let rng = Rng.create 51 in
  let a = W.uniform rng ~name:"A" ~n:4 ~key_domain:3 in
  let b = W.uniform rng ~name:"B" ~n:5 ~key_domain:3 in
  let c = W.uniform rng ~name:"C" ~n:3 ~key_domain:3 in
  mk ~m (P.equijoin "key") [ a; b; c ]

let test_multiway_alg4 () =
  let inst = three_way_instance () in
  let r = Algorithm4.run inst () in
  Alcotest.(check bool) "3-way alg4" true (same_results r.Report.results (Instance.oracle inst))

let test_multiway_alg5 () =
  let inst = three_way_instance ~m:3 () in
  let r = Algorithm5.run inst in
  Alcotest.(check bool) "3-way alg5" true (same_results r.Report.results (Instance.oracle inst))

let test_multiway_alg6 () =
  let inst = three_way_instance ~m:3 () in
  let r, _ = Algorithm6.run inst ~eps:1e-12 () in
  Alcotest.(check bool) "3-way alg6" true (same_results r.Report.results (Instance.oracle inst))

let test_multiway_l () =
  let inst = three_way_instance () in
  Alcotest.(check int) "L = 4*5*3" 60 (Instance.l inst)

(* --- Cross-algorithm agreement --- *)

let prop_ch5_agree =
  qtest "algorithms 4, 5, 6 agree" ~count:20 QCheck.(int_range 0 300) (fun seed ->
      let rng = Rng.create (seed + 8000) in
      let a = W.uniform rng ~name:"A" ~n:5 ~key_domain:4 in
      let b = W.uniform rng ~name:"B" ~n:7 ~key_domain:4 in
      let pred = P.equijoin2 "key" "key" in
      let r4 = (Algorithm4.run (mk pred [ a; b ]) ()).Report.results in
      let r5 = (Algorithm5.run (mk ~m:3 pred [ a; b ])).Report.results in
      let r6, _ = Algorithm6.run (mk ~m:3 pred [ a; b ]) ~eps:1e-12 () in
      same_results r4 r5 && same_results r4 r6.Report.results)

(* --- Jaccard-predicate multiway check (arbitrary predicate, Ch. 5) --- *)

let test_alg4_jaccard () =
  let rng = Rng.create 53 in
  let a = W.set_valued rng ~name:"A" ~n:6 ~universe:10 ~set_size:4 in
  let b = W.set_valued rng ~name:"B" ~n:6 ~universe:10 ~set_size:4 in
  let inst = mk (P.jaccard_above "tags" "tags" ~threshold:0.3) [ a; b ] in
  let r = Algorithm4.run inst () in
  Alcotest.(check bool) "jaccard ok" true (same_results r.Report.results (Instance.oracle inst))

let () =
  Alcotest.run "algorithms-ch5"
    [ ( "hypergeom",
        [ Alcotest.test_case "pmf sums to 1" `Quick test_pmf_sums_to_one;
          Alcotest.test_case "cdf + tail = 1" `Quick test_cdf_plus_tail;
          Alcotest.test_case "pmf exact small case" `Quick test_pmf_against_exact_small;
          Alcotest.test_case "tail = 1 at n = L" `Quick test_tail_certain_overflow;
          Alcotest.test_case "n*(eps=0) = M" `Quick test_n_star_eps0_is_m;
          Alcotest.test_case "n* = L when M >= S" `Quick test_n_star_m_ge_s_is_l;
          Alcotest.test_case "n* monotone in eps + tight" `Quick test_n_star_monotone_in_eps;
          Alcotest.test_case "n* monotone in M" `Quick test_n_star_monotone_in_m;
          Alcotest.test_case "pmf vs Monte-Carlo" `Quick test_pmf_monte_carlo;
          Alcotest.test_case "blemish rate within bound" `Quick test_blemish_rate_within_bound
        ] );
      ( "algorithm4",
        [ Alcotest.test_case "correct" `Quick test_alg4_correct;
          Alcotest.test_case "exact S output" `Quick test_alg4_exact_output;
          Alcotest.test_case "empty result" `Quick test_alg4_empty;
          Alcotest.test_case "write per iTuple" `Quick test_alg4_write_pattern_covers_all;
          Alcotest.test_case "S = L" `Quick test_alg4_all_match;
          prop_alg4_random
        ] );
      ( "algorithm5",
        [ Alcotest.test_case "correct" `Quick test_alg5_correct;
          Alcotest.test_case "scan counts" `Quick test_alg5_scan_count;
          Alcotest.test_case "write cost S" `Quick test_alg5_write_cost_is_s;
          Alcotest.test_case "read cost ceil(S/M)L" `Quick test_alg5_read_cost;
          Alcotest.test_case "empty result" `Quick test_alg5_empty;
          prop_alg5_random
        ] );
      ( "algorithm6",
        [ Alcotest.test_case "correct" `Quick test_alg6_correct;
          Alcotest.test_case "M >= S shortcut" `Quick test_alg6_m_ge_s_shortcut;
          Alcotest.test_case "eps = 0 degenerates" `Quick test_alg6_eps0_degenerates;
          Alcotest.test_case "empty result" `Quick test_alg6_empty;
          Alcotest.test_case "segment structure" `Quick test_alg6_segment_structure;
          Alcotest.test_case "blemish + salvage" `Quick test_alg6_blemish_salvage;
          Alcotest.test_case "blemish without salvage" `Quick test_alg6_blemish_without_salvage_loses_results;
          Alcotest.test_case "eps bounds" `Quick test_alg6_eps_bounds;
          prop_alg6_random
        ] );
      ( "algorithm7",
        [ Alcotest.test_case "correct" `Quick test_alg7_correct;
          Alcotest.test_case "empty" `Quick test_alg7_empty;
          Alcotest.test_case "beats algorithm 5" `Quick test_alg7_cheaper_than_alg5;
          Alcotest.test_case "detects PK violation" `Quick test_alg7_detects_pk_violation;
          Alcotest.test_case "Definition 3 holds" `Quick test_alg7_private;
          prop_alg7_random
        ] );
      ( "algorithm8",
        [ Alcotest.test_case "correct" `Quick test_alg8_correct;
          Alcotest.test_case "empty" `Quick test_alg8_empty;
          Alcotest.test_case "many-to-many duplicates" `Quick test_alg8_many_to_many;
          Alcotest.test_case "sharded slices union" `Quick test_alg8_sharded_slices_union;
          Alcotest.test_case "Definition 3 holds" `Quick test_alg8_private;
          prop_alg8_random
        ] );
      ( "multiway",
        [ Alcotest.test_case "L product" `Quick test_multiway_l;
          Alcotest.test_case "alg4 three-way" `Quick test_multiway_alg4;
          Alcotest.test_case "alg5 three-way" `Quick test_multiway_alg5;
          Alcotest.test_case "alg6 three-way" `Quick test_multiway_alg6;
          Alcotest.test_case "alg4 jaccard" `Quick test_alg4_jaccard
        ] );
      ("agreement", [ prop_ch5_agree ])
    ]
