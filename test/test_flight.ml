(* The flight recorder end to end: trace-context validation, recorder
   semantics (hierarchy, ring buffer, attribute whitelist, adoption),
   structured logging, the wire-level context stamp, a real two-process
   crash-resume join whose spans must form ONE connected trace, and the
   recorder-level privacy property — same-shape inputs must produce
   byte-identical timelines under every safe algorithm, and must NOT
   under the naive nested loop. *)

open Ppj_net
module Obs = Ppj_obs
module Recorder = Obs.Recorder
module Trace_ctx = Obs.Trace_ctx
module Log = Obs.Log
module Json = Obs.Json
module Clock = Obs.Clock
module Ch = Ppj_scpu.Channel
module W = Ppj_relation.Workload
module P = Ppj_relation.Predicate
module T = Ppj_relation.Tuple
module Rng = Ppj_crypto.Rng
module Service = Ppj_core.Service
module Instance = Ppj_core.Instance

let ok = function Ok v -> v | Error e -> Alcotest.fail e

(* --- Trace_ctx ------------------------------------------------------- *)

let test_ctx_of_strings () =
  let c = ok (Trace_ctx.of_strings ~trace_id:"65853486de148-6350" ~span_id:"cli-7") in
  Alcotest.(check string) "trace id" "65853486de148-6350" (Trace_ctx.trace_id c);
  Alcotest.(check string) "span id" "cli-7" (Trace_ctx.span_id c);
  Alcotest.(check (option string)) "parent of a real span" (Some "cli-7") (Trace_ctx.parent c);
  let root = ok (Trace_ctx.of_strings ~trace_id:"t1" ~span_id:Trace_ctx.root_span) in
  Alcotest.(check (option string)) "root span has no parent" None (Trace_ctx.parent root)

let test_ctx_rejects_bad_ids () =
  let bad ~trace_id ~span_id =
    match Trace_ctx.of_strings ~trace_id ~span_id with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted trace_id=%S span_id=%S" trace_id span_id
  in
  bad ~trace_id:"" ~span_id:"0";
  bad ~trace_id:"has space" ~span_id:"0";
  bad ~trace_id:(String.make 33 'a') ~span_id:"0";
  bad ~trace_id:"ok" ~span_id:"semi;colon";
  bad ~trace_id:"ok" ~span_id:"";
  Alcotest.check_raises "make raises on bad input" (Invalid_argument "trace_ctx: bad trace_id")
    (fun () -> ignore (Trace_ctx.make ~trace_id:"no/slash" ~span_id:"0"))

(* --- Recorder: hierarchy and the deterministic timeline -------------- *)

let test_timeline_hierarchy () =
  let r = Recorder.create ~name:"t" () in
  Recorder.with_span r ~attrs:[ ("n", Recorder.int 3) ] "outer" (fun () ->
      Recorder.event r ~attrs:[ ("k", Recorder.int 1) ] "tick";
      Recorder.with_span r "inner" (fun () -> Recorder.event r "tock"));
  Alcotest.(check string) "indent mirrors the span tree"
    "* outer n=3\n  - tick k=1\n  * inner\n    - tock\n" (Recorder.timeline r)

let test_ring_drops_oldest () =
  let r = Recorder.create ~capacity:4 ~name:"t" () in
  for i = 0 to 9 do
    Recorder.event r (Printf.sprintf "e%d" i)
  done;
  Alcotest.(check int) "dropped count" 6 (Recorder.dropped r);
  Alcotest.(check string) "newest four survive, drop header present"
    "# dropped=6\n- e6\n- e7\n- e8\n- e9\n" (Recorder.timeline r);
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Recorder.create: capacity must be >= 1") (fun () ->
      ignore (Recorder.create ~capacity:0 ~name:"t" ()))

let test_attr_whitelist () =
  let rejected s =
    try
      ignore (Recorder.sym s);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "empty rejected" true (rejected "");
  Alcotest.(check bool) "65 chars rejected" true (rejected (String.make 65 'x'));
  Alcotest.(check bool) "newline rejected" true (rejected "a\nb");
  Alcotest.(check bool) "raw bytes rejected" true (rejected "a\x01b");
  Alcotest.(check bool) "printable accepted" true
    (match Recorder.sym "alg5" with Recorder.Sym _ -> true | _ -> false)

(* Pull a field out of a perfetto event's [args] object. *)
let arg_str key ev =
  match Option.bind (Json.member "args" ev) (Json.member key) with
  | Some (Json.Str s) -> Some s
  | _ -> None

let name_of ev = match Json.member "name" ev with Some (Json.Str s) -> Some s | _ -> None

let find_span events sname =
  match List.find_opt (fun e -> name_of e = Some sname) events with
  | Some e -> e
  | None -> Alcotest.failf "no %S span in trace" sname

let test_ctx_adopt_links_processes () =
  let cli = Recorder.create ~trace_id:"tid-1" ~name:"cli" () in
  let span = Recorder.start_span cli "submit" in
  let ctx = Recorder.ctx cli in
  Alcotest.(check string) "ctx carries the open span" span (Trace_ctx.span_id ctx);
  let srv = Recorder.create ~name:"srv" () in
  Recorder.adopt srv ctx;
  Alcotest.(check string) "server joins the client's trace" "tid-1" (Recorder.trace_id srv);
  Recorder.with_span srv "handshake" (fun () -> ());
  Recorder.end_span cli;
  let events = ok (Recorder.events_of (Recorder.to_perfetto srv)) in
  let hs = find_span events "handshake" in
  Alcotest.(check (option string)) "server root span is parented across the wire"
    (Some span) (arg_str "parent_id" hs);
  Alcotest.(check (option string)) "trace id exported" (Some "tid-1") (arg_str "trace_id" hs)

let test_ctx_without_open_span_is_root () =
  let cli = Recorder.create ~trace_id:"tid-2" ~name:"cli" () in
  let ctx = Recorder.ctx cli in
  Alcotest.(check string) "idle client sends the root span" Trace_ctx.root_span
    (Trace_ctx.span_id ctx);
  let srv = Recorder.create ~name:"srv" () in
  Recorder.adopt srv ctx;
  Recorder.with_span srv "handshake" (fun () -> ());
  let events = ok (Recorder.events_of (Recorder.to_perfetto srv)) in
  Alcotest.(check (option string)) "no parent when the client had no open span" None
    (arg_str "parent_id" (find_span events "handshake"))

let test_explicit_parent_for_resume () =
  (* The resume pattern: the original join span is long closed when the
     retry arrives, so the resume span names it as parent explicitly. *)
  let r = Recorder.create ~name:"srv" () in
  let join_id = ref "" in
  Recorder.with_span r "join" (fun () -> join_id := Option.get (Recorder.current_span_id r));
  Recorder.with_span r ~parent:!join_id "resume" (fun () -> ());
  let events = ok (Recorder.events_of (Recorder.to_perfetto r)) in
  let join = find_span events "join" and resume = find_span events "resume" in
  Alcotest.(check (option string)) "resume is parented under the original join"
    (arg_str "span_id" join) (arg_str "parent_id" resume)

let test_perfetto_shape_and_merge () =
  let r = Recorder.create ~name:"proc" () in
  Recorder.with_span r "work" (fun () -> Recorder.event r "mark");
  let trace = Recorder.to_perfetto r in
  (match ok (Recorder.events_of trace) with
  | meta :: rest ->
      Alcotest.(check (option string)) "leading process_name metadata"
        (Some "M")
        (match Json.member "ph" meta with Some (Json.Str s) -> Some s | _ -> None);
      Alcotest.(check int) "span + event follow" 2 (List.length rest)
  | [] -> Alcotest.fail "empty traceEvents");
  let r2 = Recorder.create ~name:"other" () in
  Recorder.event r2 "solo";
  let merged = ok (Recorder.merge [ trace; Recorder.to_perfetto r2 ]) in
  Alcotest.(check int) "merge concatenates both processes" 5
    (List.length (ok (Recorder.events_of merged)));
  match Recorder.events_of (Json.Obj [ ("nope", Json.Null) ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "events_of accepted a non-trace object"

(* --- structured logging ---------------------------------------------- *)

let with_fake_clock t f =
  Clock.set_source (fun () -> t);
  Fun.protect ~finally:Clock.reset_source f

let capture_log ?level () =
  let lines = ref [] in
  let log = Log.create ?level ~sink:(fun s -> lines := s :: !lines) ~name:"test" () in
  (log, fun () -> List.rev !lines)

let test_log_line_format () =
  with_fake_clock 12.5 (fun () ->
      let log, lines = capture_log ~level:Log.Debug () in
      Log.info log ~kv:[ ("alg", "alg5"); ("peer", "alice smith") ] "join executed";
      Log.debug log "plain";
      Alcotest.(check (list string)) "tokenisable key=value lines"
        [ "ts=12.500000 level=info logger=test msg=\"join executed\" alg=alg5 peer=\"alice smith\"";
          "ts=12.500000 level=debug logger=test msg=plain"
        ]
        (lines ()))

let test_log_level_filtering () =
  with_fake_clock 1.0 (fun () ->
      let log, lines = capture_log ~level:Log.Warn () in
      Log.debug log "hidden";
      Log.info log "hidden";
      Log.warn log "shown";
      Log.error log "shown too";
      Alcotest.(check int) "only warn and error pass" 2 (List.length (lines ()));
      Log.set_level log Log.Debug;
      Log.debug log "now visible";
      Alcotest.(check int) "set_level opens the gate" 3 (List.length (lines ())))

let test_log_level_of_string () =
  Alcotest.(check bool) "warning aliases warn" true (Log.level_of_string "warning" = Ok Log.Warn);
  Alcotest.(check bool) "case-insensitive" true (Log.level_of_string "INFO" = Ok Log.Info);
  Alcotest.(check bool) "unknown rejected" true
    (match Log.level_of_string "loud" with Error _ -> true | Ok _ -> false)

(* --- the wire-level context stamp ------------------------------------ *)

let test_wire_ctx_roundtrip () =
  let ctx = Trace_ctx.make ~trace_id:"abc-123" ~span_id:"cli-7" in
  (match Wire.of_frame (Wire.to_frame ~seq:3 (Wire.Attest_request { version = Wire.version; ctx = Some ctx })) with
  | Ok (Wire.Attest_request { version; ctx = Some c }) ->
      Alcotest.(check int) "version" Wire.version version;
      Alcotest.(check string) "trace id" "abc-123" (Trace_ctx.trace_id c);
      Alcotest.(check string) "span id" "cli-7" (Trace_ctx.span_id c)
  | Ok _ -> Alcotest.fail "decoded to a different message"
  | Error e -> Alcotest.fail e);
  match Wire.of_frame (Wire.to_frame (Wire.Attest_request { version = Wire.version; ctx = None })) with
  | Ok (Wire.Attest_request { ctx = None; _ }) -> ()
  | Ok _ -> Alcotest.fail "ctx materialised out of nothing"
  | Error e -> Alcotest.fail e

let test_wire_accepts_bare_v2_payload () =
  (* A v2 client's Attest_request is the two version bytes and nothing
     else; the v3 decoder must read it as "no context", not reject it. *)
  match Wire.of_frame { Frame.tag = 1; seq = 0; payload = "\x00\x02" } with
  | Ok (Wire.Attest_request { version = 2; ctx = None }) -> ()
  | Ok _ -> Alcotest.fail "bare v2 payload misdecoded"
  | Error e -> Alcotest.fail e

let test_wire_rejects_bad_ctx_ids () =
  (* Flag says "context follows" but the trace id violates the charset:
     the decoder must refuse rather than let junk ids into the recorder. *)
  let b = Buffer.create 32 in
  Buffer.add_uint16_be b 3;
  Buffer.add_uint8 b 1;
  Buffer.add_int32_be b 6l;
  Buffer.add_string b "bad id";
  Buffer.add_int32_be b 1l;
  Buffer.add_string b "0";
  match Wire.of_frame { Frame.tag = 1; seq = 0; payload = Buffer.contents b } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a malformed trace id"

(* --- two OS processes: one crash-resume join, one connected trace ---- *)

let mac_key = "test-flight-mac-key"
let schema = W.keyed_schema ()

let contract =
  { Ch.contract_id = "contract-flight-001";
    providers = [ "alice"; "bob" ];
    recipient = "carol";
    predicate = "eq(key,key)";
  }

let workload () =
  let rng = Rng.create 11 in
  W.equijoin_pair rng ~na:12 ~nb:18 ~matches:14 ~max_multiplicity:3

let service_config = { Service.m = 4; seed = 9; algorithm = Service.Alg5 }

let in_process_delivery () =
  let pa = Ch.party ~id:"alice" ~secret:(String.make 16 'a') in
  let pb = Ch.party ~id:"bob" ~secret:(String.make 16 'b') in
  let pc = Ch.party ~id:"carol" ~secret:(String.make 16 'c') in
  let a, b = workload () in
  match
    Service.run service_config ~contract
      ~submissions:
        [ (pa, schema, Ch.submit pa contract a); (pb, schema, Ch.submit pb contract b) ]
      ~recipient:pc ~predicate:(P.equijoin2 "key" "key")
  with
  | Ok o -> List.map T.encode o.Service.delivered
  | Error e -> Alcotest.fail e

let trace_ids events =
  List.sort_uniq compare (List.filter_map (arg_str "trace_id") events)

let test_two_process_crash_resume_trace () =
  let tmp name =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ppj-flight-%s-%d" name (Unix.getpid ()))
  in
  let path = tmp "sock" and trace_path = tmp "srv.json" in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  match Unix.fork () with
  | 0 ->
      (* Child: the service under a crash plan, exporting its trace on exit. *)
      (try
         let recorder = Recorder.create ~name:"server" () in
         let faults =
           match Ppj_fault.Plan.of_string "crash@t=60" with
           | Ok plan -> Ppj_fault.Injector.create plan
           | Error e -> failwith e
         in
         let server =
           Server.create ~recorder ~mac_key ~seed:5 ~faults ~checkpoint_every:16 ()
         in
         Reactor.serve_unix (Reactor.create server) ~path ~max_sessions:3 ();
         let oc = open_out trace_path in
         output_string oc (Json.to_string (Recorder.to_perfetto recorder));
         close_out oc
       with _ -> ());
      Unix._exit 0
  | pid ->
      Fun.protect
        ~finally:(fun () ->
          (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
          (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
          try Sys.remove trace_path with Sys_error _ -> ())
        (fun () ->
          let connect () =
            let rec go n =
              match Transport.connect_unix ~path () with
              | Ok t -> t
              | Error e -> if n = 0 then Alcotest.fail e else (Unix.sleepf 0.05; go (n - 1))
            in
            go 100
          in
          (* One client-side recorder across all three sessions, so the
             whole exchange is one trace. *)
          let recorder = Recorder.create ~name:"client" () in
          let a, b = workload () in
          let submit id rel =
            let c = Client.create ~recorder (connect ()) in
            ok
              (Client.submit_relation c ~rng:(Rng.create (Hashtbl.hash id)) ~id ~mac_key ~contract
                 ~schema rel);
            Client.close c
          in
          submit "alice" a;
          submit "bob" b;
          let c = Client.create ~recorder (connect ()) in
          let _, tuples =
            ok (Client.fetch_result c ~rng:(Rng.create 99) ~id:"carol" ~mac_key ~contract service_config)
          in
          Client.close c;
          Alcotest.(check (list string)) "delivery survives the crash byte-identically"
            (in_process_delivery ()) (List.map T.encode tuples);
          (* Wait for the child to flush its trace, then join the two halves. *)
          ignore (Unix.waitpid [] pid);
          let ic = open_in trace_path in
          let srv_trace =
            Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
                ok (Json.of_string (really_input_string ic (in_channel_length ic))))
          in
          let cli_trace = Recorder.to_perfetto recorder in
          let srv = ok (Recorder.events_of srv_trace) in
          let cli = ok (Recorder.events_of cli_trace) in
          let names = List.filter_map name_of srv in
          Alcotest.(check bool) "the injected crash is on the record" true
            (List.mem "fault.crash" names);
          Alcotest.(check (list string)) "both processes share one trace id"
            (trace_ids cli) (trace_ids srv);
          Alcotest.(check int) "exactly one trace id" 1 (List.length (trace_ids srv));
          let join = find_span srv "join" and resume = find_span srv "resume" in
          Alcotest.(check (option string)) "resume is parented under the crashed join"
            (arg_str "span_id" join) (arg_str "parent_id" resume);
          (* Client execute span exists and the merged trace is well-formed. *)
          ignore (find_span cli "execute");
          let merged = ok (Recorder.merge [ cli_trace; srv_trace ]) in
          Alcotest.(check int) "merge keeps every event"
            (List.length cli + List.length srv)
            (List.length (ok (Recorder.events_of merged))))

(* --- recorder-level privacy: timelines are data-independent ---------- *)

(* Mirror of test_privacy_prop, one level up: instead of the
   coprocessor's access trace we compare the flight recorder's rendered
   timeline (every span, event and attribute, minus timestamps and ids).
   With [event_batch:1] the recorder ticks on every live transfer, so a
   data-dependent operation count or attribute would break equality. *)

let pred = P.equijoin2 "key" "key"
let runs_per_property = 10

type shape = { na : int; nb : int; mult : int; matches : int; s1 : int; s2 : int }

let shape_gen =
  let open QCheck.Gen in
  let* na = int_range 4 9 in
  let* nb = int_range 4 12 in
  let* mult = int_range 1 3 in
  let* matches = int_range 1 (min nb (na * mult)) in
  let* s1 = int_range 0 9999 in
  let* s2 = int_range 0 9999 in
  let s2 = if s2 = s1 then s2 + 10000 else s2 in
  return { na; nb; mult; matches; s1; s2 }

let pp_shape sh =
  Printf.sprintf "{na=%d; nb=%d; mult=%d; matches=%d; s1=%d; s2=%d}" sh.na sh.nb sh.mult
    sh.matches sh.s1 sh.s2

let shape_arb = QCheck.make ~print:pp_shape shape_gen

let timeline_of ~na ~nb ~matches ~mult ~data_seed run =
  let rng = Rng.create data_seed in
  let a, b = W.equijoin_pair rng ~na ~nb ~matches ~max_multiplicity:mult in
  let recorder = Recorder.create ~name:"t" () in
  let inst =
    Instance.create ~recorder ~event_batch:1 ~m:3 ~seed:1234 ~predicate:pred [ a; b ]
  in
  ignore (run inst);
  Recorder.timeline recorder

let structure_case ~qcheck_seed name run =
  let cell =
    QCheck.Test.make_cell ~count:runs_per_property ~name shape_arb (fun sh ->
        let tl s =
          timeline_of ~na:sh.na ~nb:sh.nb ~matches:sh.matches ~mult:sh.mult ~data_seed:s run
        in
        String.equal (tl sh.s1) (tl sh.s2))
  in
  Alcotest.test_case name `Quick (fun () ->
      QCheck.Test.check_cell_exn ~rand:(Random.State.make [| qcheck_seed |]) cell)

let safe_algorithms =
  let open Ppj_core in
  [ ("algorithm 1", fun i -> ignore (Algorithm1.run i ~n:3));
    ("algorithm 1 variant", fun i -> ignore (Algorithm1.Variant.run i ~n:3));
    ("algorithm 2", fun i -> ignore (Algorithm2.run i ~n:3 ()));
    ("algorithm 3", fun i -> ignore (Algorithm3.run i ~n:3 ~attr_a:"key" ~attr_b:"key" ()));
    ("algorithm 4", fun i -> ignore (Algorithm4.run i ()));
    ("algorithm 5", fun i -> ignore (Algorithm5.run i));
    ("algorithm 6", fun i -> ignore (Algorithm6.run i ~eps:1e-12 ()))
  ]

let structure_cases =
  List.mapi
    (fun k (name, run) -> structure_case ~qcheck_seed:(5353 + k) name run)
    safe_algorithms

(* Negative control: the naive nested loop's transfer count follows the
   match count, so pairs with different match counts must render
   different timelines — otherwise the equalities above are vacuous. *)
let control_gen =
  let open QCheck.Gen in
  let* na = int_range 4 9 in
  let* nb = int_range 4 12 in
  let* m1 = int_range 0 (min nb na) in
  let* m2 = int_range 0 (min nb na - 1) in
  let m2 = if m2 >= m1 then m2 + 1 else m2 in
  let* s = int_range 0 9999 in
  return (na, nb, m1, m2, s)

let control_arb =
  QCheck.make
    ~print:(fun (na, nb, m1, m2, s) ->
      Printf.sprintf "{na=%d; nb=%d; m1=%d; m2=%d; s=%d}" na nb m1 m2 s)
    control_gen

let control_case =
  let naive i = ignore (Ppj_core.Unsafe.naive_nested_loop i) in
  let cell =
    QCheck.Test.make_cell ~count:runs_per_property ~name:"naive nested loop leaks"
      control_arb (fun (na, nb, m1, m2, s) ->
        let tl matches data_seed =
          timeline_of ~na ~nb ~matches ~mult:1 ~data_seed naive
        in
        not (String.equal (tl m1 s) (tl m2 (s + 1))))
  in
  Alcotest.test_case "naive nested loop leaks" `Quick (fun () ->
      QCheck.Test.check_cell_exn ~rand:(Random.State.make [| 888 |]) cell)

let () =
  Alcotest.run "flight"
    [ ( "trace-ctx",
        [ Alcotest.test_case "of_strings accepts valid ids" `Quick test_ctx_of_strings;
          Alcotest.test_case "rejects bad ids" `Quick test_ctx_rejects_bad_ids
        ] );
      ( "recorder",
        [ Alcotest.test_case "timeline hierarchy" `Quick test_timeline_hierarchy;
          Alcotest.test_case "ring drops oldest" `Quick test_ring_drops_oldest;
          Alcotest.test_case "attribute whitelist" `Quick test_attr_whitelist;
          Alcotest.test_case "ctx/adopt links processes" `Quick test_ctx_adopt_links_processes;
          Alcotest.test_case "idle ctx is root" `Quick test_ctx_without_open_span_is_root;
          Alcotest.test_case "explicit resume parent" `Quick test_explicit_parent_for_resume;
          Alcotest.test_case "perfetto shape and merge" `Quick test_perfetto_shape_and_merge
        ] );
      ( "log",
        [ Alcotest.test_case "line format" `Quick test_log_line_format;
          Alcotest.test_case "level filtering" `Quick test_log_level_filtering;
          Alcotest.test_case "level_of_string" `Quick test_log_level_of_string
        ] );
      ( "wire-ctx",
        [ Alcotest.test_case "roundtrip" `Quick test_wire_ctx_roundtrip;
          Alcotest.test_case "bare v2 payload tolerated" `Quick test_wire_accepts_bare_v2_payload;
          Alcotest.test_case "bad ctx ids rejected" `Quick test_wire_rejects_bad_ctx_ids
        ] );
      ( "two-process",
        [ Alcotest.test_case "crash-resume is one connected trace" `Quick
            test_two_process_crash_resume_trace
        ] );
      ("structure-privacy", structure_cases @ [ control_case ])
    ]
