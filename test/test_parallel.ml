(* Multi-coprocessor parallelism (§4.4.4, §5.3.5). *)

module Par = Ppj_parallel.Parallel
module W = Ppj_relation.Workload
module P = Ppj_relation.Predicate
module T = Ppj_relation.Tuple
module Rng = Ppj_crypto.Rng
module Instance = Ppj_core.Instance

let tuple_set l = List.sort compare (List.map (fun t -> Format.asprintf "%a" T.pp t) l)

let workload ?(seed = 11) () =
  let rng = Rng.create seed in
  W.equijoin_pair rng ~na:12 ~nb:18 ~matches:14 ~max_multiplicity:3

let pred = P.equijoin2 "key" "key"

let oracle () =
  let a, b = workload () in
  Instance.oracle (Instance.create ~m:4 ~seed:1 ~predicate:pred [ a; b ])

let check_correct name run () =
  let want = tuple_set (oracle ()) in
  List.iter
    (fun p ->
      let a, b = workload () in
      let o = run ~p [ a; b ] in
      Alcotest.(check bool)
        (Printf.sprintf "%s p=%d correct" name p)
        true
        (tuple_set o.Par.results = want))
    [ 1; 2; 3; 4; 8 ]

let test_alg4_correct = check_correct "alg4" (fun ~p rels -> Par.alg4 ~p ~m:4 ~seed:5 ~predicate:pred rels)
let test_alg5_correct = check_correct "alg5" (fun ~p rels -> Par.alg5 ~p ~m:4 ~seed:5 ~predicate:pred rels)

let test_alg6_correct =
  check_correct "alg6" (fun ~p rels -> Par.alg6 ~p ~m:4 ~seed:5 ~eps:1e-9 ~predicate:pred rels)

let speedup_of run p =
  let a, b = workload () in
  (run ~p [ a; b ]).Par.speedup

let test_speedups_grow () =
  List.iter
    (fun (name, run) ->
      let s1 = speedup_of run 1 in
      let s4 = speedup_of run 4 in
      Alcotest.(check (float 1e-9)) (name ^ " p=1 baseline") 1. s1;
      Alcotest.(check bool) (name ^ " p=4 speeds up") true (s4 > 1.5))
    [ ("alg4", fun ~p rels -> Par.alg4 ~p ~m:4 ~seed:5 ~predicate:pred rels);
      ("alg5", fun ~p rels -> Par.alg5 ~p ~m:4 ~seed:5 ~predicate:pred rels);
      ("alg6", fun ~p rels -> Par.alg6 ~p ~m:4 ~seed:5 ~eps:1e-9 ~predicate:pred rels)
    ]

let test_alg5_near_linear () =
  (* §5.3.5: "Algorithm 5 enjoys a linear speed up" — the dominant
     ceil(blk/M) L read term divides by P. *)
  let a, b = workload () in
  let o = Par.alg5 ~p:7 ~m:2 ~seed:5 ~predicate:pred [ a; b ] in
  Alcotest.(check bool) "at least 3x at p=7" true (o.Par.speedup > 3.)

let test_per_co_balance () =
  let a, b = workload () in
  let o = Par.alg4 ~p:4 ~m:4 ~seed:5 ~predicate:pred [ a; b ] in
  Alcotest.(check int) "four coprocessors" 4 (Array.length o.Par.per_co_transfers);
  let mx = Array.fold_left max 0 o.Par.per_co_transfers in
  let mn = Array.fold_left min max_int o.Par.per_co_transfers in
  Alcotest.(check bool) "balanced within 3x" true (mx < 3 * mn)

let test_invalid_p () =
  let a, b = workload () in
  Alcotest.check_raises "p=0" (Invalid_argument "Parallel: p must be positive") (fun () ->
      ignore (Par.alg4 ~p:0 ~m:4 ~seed:5 ~predicate:pred [ a; b ]))

let test_more_cos_than_results () =
  (* P larger than S: some coprocessors have empty ranges. *)
  let rng = Rng.create 13 in
  let a, b = W.equijoin_pair rng ~na:4 ~nb:6 ~matches:3 ~max_multiplicity:1 in
  let want =
    tuple_set (Instance.oracle (Instance.create ~m:4 ~seed:1 ~predicate:pred [ a; b ]))
  in
  let o = Par.alg5 ~p:8 ~m:4 ~seed:5 ~predicate:pred [ a; b ] in
  Alcotest.(check bool) "still correct" true (tuple_set o.Par.results = want)

let test_alg4_more_cos_than_tuples () =
  (* p > L = |A|x|B|: some shards get an empty index range.  They must
     behave exactly like absent workers — zero transfers, no phantom
     Output slot — while the join result and the accounting invariant
     (sum = speedup * max) stay intact. *)
  let rng = Rng.create 23 in
  let a, b = W.equijoin_pair rng ~na:2 ~nb:3 ~matches:2 ~max_multiplicity:1 in
  let l = Instance.l (Instance.create ~m:4 ~seed:1 ~predicate:pred [ a; b ]) in
  let p = l + 5 in
  let want =
    tuple_set (Instance.oracle (Instance.create ~m:4 ~seed:1 ~predicate:pred [ a; b ]))
  in
  let o = Par.alg4 ~p ~m:4 ~seed:5 ~predicate:pred [ a; b ] in
  Alcotest.(check bool) "correct with p > L" true (tuple_set o.Par.results = want);
  Alcotest.(check int) "one slot per coprocessor" p (Array.length o.Par.per_co_transfers);
  let empties = Array.fold_left (fun n t -> if t = 0 then n + 1 else n) 0 o.Par.per_co_transfers in
  Alcotest.(check bool) "empty shards exist and do zero transfers" true (empties >= p - l);
  let sum = Array.fold_left ( + ) 0 o.Par.per_co_transfers in
  let mx = Array.fold_left max 1 o.Par.per_co_transfers in
  Alcotest.(check (float 1e-6)) "sum = speedup * max" (float_of_int sum)
    (o.Par.speedup *. float_of_int mx);
  (* Each non-empty shard moves at least its range's writes; with p > L
     every non-empty shard holds exactly one index. *)
  Array.iter
    (fun t -> Alcotest.(check bool) "shard transfers are 0 or >= 1" true (t = 0 || t >= 1))
    o.Par.per_co_transfers

let test_empty_join_parallel () =
  let rng = Rng.create 17 in
  let a, b = W.equijoin_pair rng ~na:5 ~nb:5 ~matches:0 ~max_multiplicity:1 in
  List.iter
    (fun o -> Alcotest.(check int) "empty" 0 (List.length o.Par.results))
    [ Par.alg4 ~p:3 ~m:4 ~seed:5 ~predicate:pred [ a; b ];
      Par.alg5 ~p:3 ~m:4 ~seed:5 ~predicate:pred [ a; b ];
      Par.alg6 ~p:3 ~m:4 ~seed:5 ~eps:1e-9 ~predicate:pred [ a; b ]
    ]

let test_transfer_accounting_invariant () =
  (* The reported speedup is definitionally total work over the slowest
     coprocessor: sum(per_co) = speedup * max(per_co) must hold exactly,
     and partitioned work can never beat the slowest straggler, so
     speedup >= 1 whenever any work happened. *)
  List.iter
    (fun (name, run) ->
      List.iter
        (fun p ->
          let a, b = workload () in
          let o = run ~p [ a; b ] in
          let sum = Array.fold_left ( + ) 0 o.Par.per_co_transfers in
          let mx = Array.fold_left max 1 o.Par.per_co_transfers in
          Alcotest.(check int) (Printf.sprintf "%s p=%d arity" name p) p
            (Array.length o.Par.per_co_transfers);
          Alcotest.(check (float 1e-6))
            (Printf.sprintf "%s p=%d sum = speedup * max" name p)
            (float_of_int sum)
            (o.Par.speedup *. float_of_int mx);
          Alcotest.(check bool)
            (Printf.sprintf "%s p=%d speedup >= 1" name p)
            true (o.Par.speedup >= 1.))
        [ 1; 2; 3; 5; 8 ])
    [ ("alg4", fun ~p rels -> Par.alg4 ~p ~m:4 ~seed:5 ~predicate:pred rels);
      ("alg5", fun ~p rels -> Par.alg5 ~p ~m:4 ~seed:5 ~predicate:pred rels);
      ("alg6", fun ~p rels -> Par.alg6 ~p ~m:4 ~seed:5 ~eps:1e-9 ~predicate:pred rels)
    ]

let test_p1_matches_sequential_trace () =
  (* One logical coprocessor is just the sequential algorithm: its
     transfer total must equal the transfer count of the corresponding
     single-instance run's trace. *)
  let sequential run_alg =
    let a, b = workload () in
    let inst = Instance.create ~m:4 ~seed:5 ~predicate:pred [ a; b ] in
    (run_alg inst).Ppj_core.Report.transfers
  in
  List.iter
    (fun (name, par_total, seq_total) ->
      Alcotest.(check int) (name ^ " p=1 total = sequential trace") seq_total par_total)
    [ ( "alg4",
        (let a, b = workload () in
         Array.fold_left ( + ) 0
           (Par.alg4 ~p:1 ~m:4 ~seed:5 ~predicate:pred [ a; b ]).Par.per_co_transfers),
        sequential (fun i -> Ppj_core.Algorithm4.run i ()) );
      ( "alg5 (+ screening pass of L reads)",
        (let a, b = workload () in
         Array.fold_left ( + ) 0
           (Par.alg5 ~p:1 ~m:4 ~seed:5 ~predicate:pred [ a; b ]).Par.per_co_transfers),
        (let a, b = workload () in
         let l = Instance.l (Instance.create ~m:4 ~seed:5 ~predicate:pred [ a; b ]) in
         l + sequential (fun i -> Ppj_core.Algorithm5.run i)) )
    ]

let () =
  Alcotest.run "parallel"
    [ ( "correctness",
        [ Alcotest.test_case "alg4 p=1..8" `Quick test_alg4_correct;
          Alcotest.test_case "alg5 p=1..8" `Quick test_alg5_correct;
          Alcotest.test_case "alg6 p=1..8" `Quick test_alg6_correct;
          Alcotest.test_case "more cos than results" `Quick test_more_cos_than_results;
          Alcotest.test_case "alg4 p > L empty shards" `Quick test_alg4_more_cos_than_tuples;
          Alcotest.test_case "empty join" `Quick test_empty_join_parallel
        ] );
      ( "speedup",
        [ Alcotest.test_case "speedups grow" `Quick test_speedups_grow;
          Alcotest.test_case "alg5 near linear" `Quick test_alg5_near_linear;
          Alcotest.test_case "balance" `Quick test_per_co_balance;
          Alcotest.test_case "invalid p" `Quick test_invalid_p
        ] );
      ( "invariants",
        [ Alcotest.test_case "transfer accounting" `Quick test_transfer_accounting_invariant;
          Alcotest.test_case "p=1 matches sequential trace" `Quick
            test_p1_matches_sequential_trace
        ] )
    ]
