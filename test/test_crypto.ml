(* Crypto substrate: blocks, AES, OCB, MLFSR, PRF, hash, RNG. *)

open Ppj_crypto

let of_hex h =
  String.init (String.length h / 2) (fun i ->
      Char.chr (int_of_string ("0x" ^ String.sub h (2 * i) 2)))

let hex s =
  String.concat "" (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
                      (List.init (String.length s) (String.get s)))

let block_gen = QCheck.Gen.(map (fun s -> Block.of_string s) (string_size ~gen:char (return 16)))
let arb_block = QCheck.make ~print:(fun b -> hex (Block.to_string b)) block_gen

let qtest name ?(count = 200) arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

(* --- Block --- *)

let test_block_size () =
  Alcotest.(check int) "size" 16 Block.size;
  Alcotest.(check string) "zero" (String.make 16 '\000') (Block.to_string Block.zero)

let test_block_of_string_invalid () =
  Alcotest.check_raises "short" (Invalid_argument "Block.of_string: 3 bytes") (fun () ->
      ignore (Block.of_string "abc"))

let prop_xor_involution =
  qtest "xor involution" (QCheck.pair arb_block arb_block) (fun (a, b) ->
      Block.equal (Block.xor (Block.xor a b) b) a)

let prop_xor_commutative =
  qtest "xor commutative" (QCheck.pair arb_block arb_block) (fun (a, b) ->
      Block.equal (Block.xor a b) (Block.xor b a))

let prop_double_halve =
  qtest "halve inverts double" arb_block (fun a ->
      Block.equal (Block.halve (Block.double a)) a)

let prop_halve_double =
  qtest "double inverts halve" arb_block (fun a ->
      Block.equal (Block.double (Block.halve a)) a)

let prop_double_linear =
  qtest "double distributes over xor" (QCheck.pair arb_block arb_block) (fun (a, b) ->
      Block.equal (Block.double (Block.xor a b)) (Block.xor (Block.double a) (Block.double b)))

let test_double_reduction () =
  (* 0x80..0 doubled must fold the carry into 0x87. *)
  let top = Block.of_string ("\x80" ^ String.make 15 '\000') in
  let expect = String.make 15 '\000' ^ "\x87" in
  Alcotest.(check string) "reduction" expect (Block.to_string (Block.double top))

let test_ntz () =
  List.iter
    (fun (n, want) -> Alcotest.(check int) (Printf.sprintf "ntz %d" n) want (Block.ntz n))
    [ (1, 0); (2, 1); (3, 0); (4, 2); (8, 3); (12, 2); (1024, 10) ]

let test_of_int () =
  Alcotest.(check string) "of_int 258"
    (String.make 14 '\000' ^ "\x01\x02")
    (Block.to_string (Block.of_int 258))

(* --- AES (FIPS-197 / SP 800-38A vectors) --- *)

let aes_vector key pt ct () =
  let k = Aes.expand (of_hex key) in
  Alcotest.(check string) "encrypt" ct (hex (Block.to_string (Aes.encrypt k (Block.of_string (of_hex pt)))));
  Alcotest.(check string) "decrypt" pt (hex (Block.to_string (Aes.decrypt k (Block.of_string (of_hex ct)))))

let test_aes_fips =
  aes_vector "000102030405060708090a0b0c0d0e0f" "00112233445566778899aabbccddeeff"
    "69c4e0d86a7b0430d8cdb78070b4c55a"

let test_aes_sp800_1 =
  aes_vector "2b7e151628aed2a6abf7158809cf4f3c" "6bc1bee22e409f96e93d7e117393172a"
    "3ad77bb40d7a3660a89ecaf32466ef97"

let test_aes_sp800_2 =
  aes_vector "2b7e151628aed2a6abf7158809cf4f3c" "ae2d8a571e03ac9c9eb76fac45af8e51"
    "f5d3d58503b9699de785895a96fdbaaf"

let test_aes_sp800_3 =
  aes_vector "2b7e151628aed2a6abf7158809cf4f3c" "30c81c46a35ce411e5fbc1191a0a52ef"
    "43b1cd7f598ece23881b00e3ed030688"

let test_aes_sp800_4 =
  aes_vector "2b7e151628aed2a6abf7158809cf4f3c" "f69f2445df4f9b17ad2b417be66c3710"
    "7b0c785e27e8ad3f8223207104725dd4"

let prop_aes_roundtrip =
  qtest "aes roundtrip" (QCheck.pair arb_block arb_block) (fun (k, m) ->
      let key = Aes.expand (Block.to_string k) in
      Block.equal (Aes.decrypt key (Aes.encrypt key m)) m)

let test_aes_bad_key () =
  Alcotest.check_raises "short key" (Invalid_argument "Aes.expand: key must be 16 bytes")
    (fun () -> ignore (Aes.expand "short"))

let prop_aes_ttable_matches_reference =
  (* The fused T-table rounds against the retained byte-wise oracle:
     1k random key/block pairs, both directions. *)
  qtest "T-table agrees with Aes.Reference" ~count:1000 (QCheck.pair arb_block arb_block)
    (fun (k, m) ->
      let key = Aes.expand (Block.to_string k) in
      Block.equal (Aes.encrypt key m) (Aes.Reference.encrypt key m)
      && Block.equal (Aes.decrypt key m) (Aes.Reference.decrypt key m))

let test_aes_encrypt_into_aliasing () =
  (* In-place use (src == dst at the same offset) must match the pure API. *)
  let key = Aes.expand (of_hex "2b7e151628aed2a6abf7158809cf4f3c") in
  let pt = of_hex "6bc1bee22e409f96e93d7e117393172a" in
  let buf = Bytes.of_string ("pad!" ^ pt ^ "tail") in
  Aes.encrypt_into key ~src:buf ~src_pos:4 ~dst:buf ~dst_pos:4;
  Alcotest.(check string) "in-place encrypt" "3ad77bb40d7a3660a89ecaf32466ef97"
    (hex (Bytes.sub_string buf 4 16));
  Alcotest.(check string) "prefix untouched" "pad!" (Bytes.sub_string buf 0 4);
  Alcotest.(check string) "suffix untouched" "tail" (Bytes.sub_string buf 20 4);
  Aes.decrypt_into key ~src:buf ~src_pos:4 ~dst:buf ~dst_pos:4;
  Alcotest.(check string) "in-place decrypt" (hex pt) (hex (Bytes.sub_string buf 4 16))

let test_aes_expand_bytes () =
  let raw = of_hex "000102030405060708090a0b0c0d0e0f" in
  let buf = Bytes.of_string ("xx" ^ raw) in
  let k1 = Aes.expand raw and k2 = Aes.expand_bytes buf ~pos:2 in
  let m = Block.of_string (of_hex "00112233445566778899aabbccddeeff") in
  Alcotest.(check bool) "same schedule" true (Block.equal (Aes.encrypt k1 m) (Aes.encrypt k2 m));
  Alcotest.check_raises "out of bounds" (Invalid_argument "Aes.expand_bytes") (fun () ->
      ignore (Aes.expand_bytes (Bytes.create 10) ~pos:0))

(* --- OCB --- *)

let okey = Ocb.key_of_string (of_hex "000102030405060708090a0b0c0d0e0f")
let nonce0 = String.make 16 '\001'

let arb_msg = QCheck.string_of_size QCheck.Gen.(int_range 0 200)

let prop_ocb_roundtrip =
  qtest "ocb roundtrip" arb_msg (fun m ->
      match Ocb.decrypt okey ~nonce:nonce0 (Ocb.encrypt okey ~nonce:nonce0 m) with
      | Some m' -> String.equal m m'
      | None -> false)

let prop_ocb_tamper =
  qtest "ocb detects any single-bit flip"
    (QCheck.pair arb_msg (QCheck.pair QCheck.small_nat QCheck.small_nat))
    (fun (m, (pos, bit)) ->
      let c = Bytes.of_string (Ocb.encrypt okey ~nonce:nonce0 m) in
      let pos = pos mod Bytes.length c in
      Bytes.set c pos (Char.chr (Char.code (Bytes.get c pos) lxor (1 lsl (bit mod 8))));
      Ocb.decrypt okey ~nonce:nonce0 (Bytes.to_string c) = None)

let test_ocb_length () =
  List.iter
    (fun n ->
      let m = String.make n 'x' in
      Alcotest.(check int) (Printf.sprintf "len %d" n) (n + Ocb.tag_length)
        (String.length (Ocb.encrypt okey ~nonce:nonce0 m)))
    [ 0; 1; 15; 16; 17; 31; 32; 33; 100 ]

let test_ocb_nonce_matters () =
  let m = "same plaintext, different nonce" in
  let c1 = Ocb.encrypt okey ~nonce:nonce0 m in
  let c2 = Ocb.encrypt okey ~nonce:(String.make 16 '\002') m in
  Alcotest.(check bool) "ciphertexts differ" true (not (String.equal c1 c2));
  Alcotest.(check bool) "wrong nonce rejected" true
    (Ocb.decrypt okey ~nonce:(String.make 16 '\003') c1 = None)

let test_ocb_cipher_calls () =
  (* OCB costs m + 2 block-cipher calls per m-block message (why the paper
     picked it over XCBC/IAPM): offset setup + m blocks + tag. *)
  let key = Ocb.key_of_string (of_hex "2b7e151628aed2a6abf7158809cf4f3c") in
  Ocb.reset_block_cipher_calls key;
  ignore (Ocb.encrypt key ~nonce:nonce0 (String.make (16 * 7) 'q'));
  Alcotest.(check int) "m+2 calls" (7 + 2) (Ocb.block_cipher_calls key)

let prop_ocb_offsets_agree =
  qtest "sequential and Gray-code offsets agree" QCheck.(int_range 1 2000) (fun i ->
      Block.equal (Ocb.offset_sequential okey ~nonce:nonce0 i)
        (Ocb.offset_direct okey ~nonce:nonce0 i))

let test_ocb_f_counter () =
  Ocb.reset_f_applications okey;
  ignore (Ocb.offset_sequential okey ~nonce:nonce0 10);
  Alcotest.(check int) "10 f applications" 10 (Ocb.f_applications okey)

let test_ocb_truncated () =
  Alcotest.(check bool) "truncated rejected" true (Ocb.decrypt okey ~nonce:nonce0 "short" = None)

let prop_ocb_cross_key =
  qtest "decryption under the wrong key fails" arb_msg (fun m ->
      let other = Ocb.key_of_string (of_hex "ffeeddccbbaa99887766554433221100") in
      Ocb.decrypt other ~nonce:nonce0 (Ocb.encrypt okey ~nonce:nonce0 m) = None)

let test_ocb_in_place_matches_string_api () =
  (* seal_into/open_into at an offset in a reused oversized scratch must
     produce byte-identical ciphertext to the string API and roundtrip,
     for every message length 0..64 (all four padding shapes). *)
  let scratch = Bytes.create 256 in
  let back = Bytes.create 256 in
  for len = 0 to 64 do
    let msg = String.init len (fun i -> Char.chr ((len + (7 * i)) land 0xff)) in
    let want = Ocb.encrypt okey ~nonce:nonce0 msg in
    Bytes.blit_string msg 0 scratch 3 len;
    Ocb.seal_into okey ~nonce:nonce0 ~src:scratch ~src_pos:3 ~src_len:len ~dst:scratch
      ~dst_pos:71;
    let got = Bytes.sub_string scratch 71 (len + Ocb.tag_length) in
    Alcotest.(check string) (Printf.sprintf "seal_into len %d" len) (hex want) (hex got);
    Alcotest.(check bool) (Printf.sprintf "open_into len %d" len) true
      (Ocb.open_into okey ~nonce:nonce0 ~src:scratch ~src_pos:71
         ~src_len:(len + Ocb.tag_length) ~dst:back ~dst_pos:5);
    Alcotest.(check string) (Printf.sprintf "roundtrip len %d" len) (hex msg)
      (hex (Bytes.sub_string back 5 len))
  done

let test_ocb_open_into_rejects_flip () =
  let msg = String.make 33 'p' in
  let ct = Ocb.encrypt okey ~nonce:nonce0 msg in
  let src = Bytes.of_string ct in
  let dst = Bytes.create (String.length msg) in
  (* flip one bit of the tag *)
  let pos = String.length ct - 1 in
  Bytes.set src pos (Char.chr (Char.code (Bytes.get src pos) lxor 1));
  Alcotest.(check bool) "flipped tag rejected" false
    (Ocb.open_into okey ~nonce:nonce0 ~src ~src_pos:0 ~src_len:(String.length ct) ~dst
       ~dst_pos:0);
  Alcotest.(check bool) "short input rejected" false
    (Ocb.open_into okey ~nonce:nonce0 ~src ~src_pos:0 ~src_len:8 ~dst ~dst_pos:0)

let test_ocb_long_message_l_tab () =
  (* A multi-hundred-block message walks l_at through the geometric
     growth path; the result must still roundtrip and match a
     freshly-keyed encryption (same L table contents). *)
  let msg = String.init (16 * 300) (fun i -> Char.chr (i land 0xff)) in
  let fresh = Ocb.key_of_string (of_hex "000102030405060708090a0b0c0d0e0f") in
  let c1 = Ocb.encrypt okey ~nonce:nonce0 msg in
  let c2 = Ocb.encrypt fresh ~nonce:nonce0 msg in
  Alcotest.(check bool) "same ciphertext" true (String.equal c1 c2);
  match Ocb.decrypt okey ~nonce:nonce0 c1 with
  | Some m -> Alcotest.(check bool) "roundtrip" true (String.equal m msg)
  | None -> Alcotest.fail "long message failed to authenticate"

(* --- constant-time compare --- *)

let test_ct_equal_basic () =
  Alcotest.(check bool) "equal" true (Block.ct_equal "abcd" "abcd");
  Alcotest.(check bool) "unequal" false (Block.ct_equal "abcd" "abce");
  Alcotest.(check bool) "length mismatch" false (Block.ct_equal "abc" "abcd");
  Alcotest.(check bool) "empty" true (Block.ct_equal "" "")

let test_ct_equal_rejects_every_bit_flip () =
  let tag = of_hex "0123456789abcdeffedcba9876543210" in
  Alcotest.(check bool) "identical tag accepted" true (Block.ct_equal tag tag);
  for byte = 0 to 15 do
    for bit = 0 to 7 do
      let flipped =
        String.mapi (fun i c -> if i = byte then Char.chr (Char.code c lxor (1 lsl bit)) else c) tag
      in
      if Block.ct_equal tag flipped then
        Alcotest.failf "bit flip at byte %d bit %d accepted" byte bit
    done
  done

(* Pinned known-answer vectors for this OCB implementation.

   These are NOT the RFC 7253 (OCB3) or the published OCB1 vectors: the
   implementation follows the OCB1-style mode of the paper's era (Gray-code
   offsets, 16-byte nonce mixed via one block-cipher call, no associated
   data), whose ciphertexts differ from both published parameterizations —
   see DESIGN.md.  The values below were computed from this implementation
   and pinned so that any future change to offsets, padding or tag
   derivation shows up as a hard failure, not a silent wire-format break
   (sealed results written by older code would otherwise stop decrypting). *)

let ocb_kat pt ct () =
  let key = Ocb.key_of_string (of_hex "000102030405060708090a0b0c0d0e0f") in
  let nonce = of_hex "00000000000000000000000000000001" in
  Alcotest.(check string) "encrypt" ct (hex (Ocb.encrypt key ~nonce (of_hex pt)));
  match Ocb.decrypt key ~nonce (of_hex ct) with
  | Some m -> Alcotest.(check string) "decrypt" pt (hex m)
  | None -> Alcotest.fail "pinned ciphertext failed to authenticate"

let test_ocb_kat_empty = ocb_kat "" "15d37dd7c890d5d6acab927bc0dc60ee"
let test_ocb_kat_1 = ocb_kat "00" "3b45303a4a46d63101a060f8895d1fdfce"

let test_ocb_kat_15 =
  ocb_kat "000102030405060708090a0b0c0d0e"
    "f756746dacdbaa9a0f11769c4e5ddfb0ea7656433008954c05ecab112799ee"

let test_ocb_kat_16 =
  ocb_kat "000102030405060708090a0b0c0d0e0f"
    "37df8ce15b489bf31d0fc44da1faf6d6dfb763ebdb5f0e719c7b4161808004df"

let test_ocb_kat_24 =
  ocb_kat "000102030405060708090a0b0c0d0e0f1011121314151617"
    "01a075f0d815b1a4e9c881a1bcffc3ebec616acd6937f556c28dff03bcc5432283ed3cefe1517e26"

let test_ocb_kat_40 =
  ocb_kat "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f2021222324252627"
    "01a075f0d815b1a4e9c881a1bcffc3ebd4903dd0025ba4aa837c74f121b0260f78765916d245d8ecbe9f53a65dd5330b570723f2edde604b"

(* --- MLFSR --- *)

let test_mlfsr_full_cycle () =
  (* Maximality: every degree's register must enumerate 1 .. 2^l - 1. *)
  for degree = 2 to 14 do
    let t = Mlfsr.create ~degree ~seed:1 in
    let period = Mlfsr.period t in
    let seen = Array.make (period + 1) false in
    for _ = 1 to period do
      seen.(Mlfsr.next t) <- true
    done;
    for v = 1 to period do
      if not seen.(v) then
        Alcotest.failf "degree %d misses value %d" degree v
    done
  done

let test_mlfsr_degree_for () =
  List.iter
    (fun (n, want) ->
      Alcotest.(check int) (Printf.sprintf "degree_for %d" n) want (Mlfsr.degree_for n))
    [ (1, 2); (3, 2); (4, 3); (7, 3); (8, 4); (1000, 10); (640_000, 20) ]

let prop_mlfsr_random_order_is_permutation =
  qtest "random_order is a permutation of 0..n-1" ~count:50
    QCheck.(pair (int_range 1 300) (int_range 0 1000))
    (fun (n, seed) ->
      let seen = Array.make n 0 in
      Seq.iter (fun i -> seen.(i) <- seen.(i) + 1) (Mlfsr.random_order ~n ~seed);
      Array.for_all (fun c -> c = 1) seen)

let test_mlfsr_seed_changes_order () =
  let order seed = List.of_seq (Mlfsr.random_order ~n:64 ~seed) in
  Alcotest.(check bool) "different seeds differ" true (order 1 <> order 77)

let test_mlfsr_bad_degree () =
  Alcotest.check_raises "degree 33" (Invalid_argument "Mlfsr: unsupported degree 33")
    (fun () -> ignore (Mlfsr.create ~degree:33 ~seed:1))

(* --- Hash / PRF / RNG --- *)

let test_hash_deterministic () =
  Alcotest.(check string) "stable" (Hash.digest "abc") (Hash.digest "abc");
  Alcotest.(check int) "16 bytes" 16 (String.length (Hash.digest "abc"))

let prop_hash_injective_smoke =
  qtest "distinct short inputs collide never (smoke)" (QCheck.pair arb_msg arb_msg)
    (fun (a, b) -> String.equal a b || not (String.equal (Hash.digest a) (Hash.digest b)))

let test_hash_length_extension_guard () =
  (* Padding must separate "a" ^ "" from "" ^ "a"-style boundary cases. *)
  Alcotest.(check bool) "boundary" true
    (not (String.equal (Hash.digest "ab") (Hash.digest "ab\x00")))

let test_mac_key_dependent () =
  Alcotest.(check bool) "key matters" true
    (not (String.equal (Hash.mac ~key:"k1" "m") (Hash.mac ~key:"k2" "m")))

let test_prf_distinct () =
  let prf = Prf.of_seed 99 in
  Alcotest.(check bool) "blocks differ" true
    (not (Block.equal (Prf.block_at prf 0) (Prf.block_at prf 1)));
  Alcotest.(check bool) "int_at nonneg" true (Prf.int_at prf 12345 >= 0)

let test_rng_deterministic () =
  let a = Rng.create 5 and b = Rng.create 5 in
  Alcotest.(check int) "same stream" (Rng.int a 1000000) (Rng.int b 1000000)

let test_rng_split_independent () =
  let r = Rng.create 5 in
  let x = Rng.split r "x" and y = Rng.split r "y" in
  Alcotest.(check bool) "labels differ" true (Rng.int x 1_000_000_000 <> Rng.int y 1_000_000_000)

let test_rng_shuffle_permutes () =
  let a = Array.init 100 Fun.id in
  Rng.shuffle (Rng.create 3) a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 100 Fun.id) sorted

(* --- Group (DH / OT substrate) --- *)

let test_group_inverse () =
  for x = 2 to 50 do
    if Group.mul x (Group.inv x) <> 1 then Alcotest.failf "inv %d" x
  done

let prop_group_power_laws =
  qtest "g^(a+b) = g^a g^b" QCheck.(pair (int_range 1 100000) (int_range 1 100000))
    (fun (a, b) ->
      Group.mul (Group.power Group.g a) (Group.power Group.g b) = Group.power Group.g (a + b))

let test_group_key_of_deterministic () =
  Alcotest.(check string) "stable" (Group.key_of 12345) (Group.key_of 12345);
  Alcotest.(check int) "16 bytes" 16 (String.length (Group.key_of 7));
  Alcotest.(check bool) "distinct" true (Group.key_of 7 <> Group.key_of 8)

let () =
  Alcotest.run "crypto"
    [ ( "block",
        [ Alcotest.test_case "size and zero" `Quick test_block_size;
          Alcotest.test_case "invalid length" `Quick test_block_of_string_invalid;
          Alcotest.test_case "carry reduction" `Quick test_double_reduction;
          Alcotest.test_case "ntz" `Quick test_ntz;
          Alcotest.test_case "of_int" `Quick test_of_int;
          prop_xor_involution;
          prop_xor_commutative;
          prop_double_halve;
          prop_halve_double;
          prop_double_linear;
          Alcotest.test_case "ct_equal basics" `Quick test_ct_equal_basic;
          Alcotest.test_case "ct_equal rejects every bit flip" `Quick
            test_ct_equal_rejects_every_bit_flip
        ] );
      ( "aes",
        [ Alcotest.test_case "FIPS-197 vector" `Quick test_aes_fips;
          Alcotest.test_case "SP800-38A vector 1" `Quick test_aes_sp800_1;
          Alcotest.test_case "SP800-38A vector 2" `Quick test_aes_sp800_2;
          Alcotest.test_case "SP800-38A vector 3" `Quick test_aes_sp800_3;
          Alcotest.test_case "SP800-38A vector 4" `Quick test_aes_sp800_4;
          Alcotest.test_case "bad key" `Quick test_aes_bad_key;
          Alcotest.test_case "encrypt_into aliasing" `Quick test_aes_encrypt_into_aliasing;
          Alcotest.test_case "expand_bytes" `Quick test_aes_expand_bytes;
          prop_aes_roundtrip;
          prop_aes_ttable_matches_reference
        ] );
      ( "ocb",
        [ Alcotest.test_case "ciphertext length" `Quick test_ocb_length;
          Alcotest.test_case "nonce separation" `Quick test_ocb_nonce_matters;
          Alcotest.test_case "m+2 block-cipher calls" `Quick test_ocb_cipher_calls;
          Alcotest.test_case "f-application counter" `Quick test_ocb_f_counter;
          Alcotest.test_case "truncated input" `Quick test_ocb_truncated;
          Alcotest.test_case "pinned KAT: empty" `Quick test_ocb_kat_empty;
          Alcotest.test_case "pinned KAT: 1 byte" `Quick test_ocb_kat_1;
          Alcotest.test_case "pinned KAT: 15 bytes" `Quick test_ocb_kat_15;
          Alcotest.test_case "pinned KAT: 16 bytes" `Quick test_ocb_kat_16;
          Alcotest.test_case "pinned KAT: 24 bytes" `Quick test_ocb_kat_24;
          Alcotest.test_case "pinned KAT: 40 bytes" `Quick test_ocb_kat_40;
          Alcotest.test_case "in-place equals string API, len 0-64" `Quick
            test_ocb_in_place_matches_string_api;
          Alcotest.test_case "open_into rejects tag flip" `Quick test_ocb_open_into_rejects_flip;
          Alcotest.test_case "long message L-table growth" `Quick test_ocb_long_message_l_tab;
          prop_ocb_roundtrip;
          prop_ocb_tamper;
          prop_ocb_offsets_agree;
          prop_ocb_cross_key
        ] );
      ( "mlfsr",
        [ Alcotest.test_case "full cycle, degrees 2-14" `Quick test_mlfsr_full_cycle;
          Alcotest.test_case "degree_for" `Quick test_mlfsr_degree_for;
          Alcotest.test_case "seed changes order" `Quick test_mlfsr_seed_changes_order;
          Alcotest.test_case "unsupported degree" `Quick test_mlfsr_bad_degree;
          prop_mlfsr_random_order_is_permutation
        ] );
      ( "hash-prf-rng",
        [ Alcotest.test_case "hash deterministic" `Quick test_hash_deterministic;
          Alcotest.test_case "padding boundary" `Quick test_hash_length_extension_guard;
          Alcotest.test_case "mac key-dependent" `Quick test_mac_key_dependent;
          Alcotest.test_case "prf distinct points" `Quick test_prf_distinct;
          Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "rng split" `Quick test_rng_split_independent;
          Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle_permutes;
          prop_hash_injective_smoke
        ] );
      ( "group",
        [ Alcotest.test_case "inverses" `Quick test_group_inverse;
          Alcotest.test_case "key derivation" `Quick test_group_key_of_deterministic;
          prop_group_power_laws
        ] )
    ]
