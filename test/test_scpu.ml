(* Secure-coprocessor substrate: trace, host, coprocessor, attestation,
   channels. *)

module Trace = Ppj_scpu.Trace
module Host = Ppj_scpu.Host
module Co = Ppj_scpu.Coprocessor
module Attestation = Ppj_scpu.Attestation
module Channel = Ppj_scpu.Channel
module Rng = Ppj_crypto.Rng
module Workload = Ppj_relation.Workload
module Relation = Ppj_relation.Relation

let qtest name ?(count = 100) arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

let fresh ?(m = 8) ?(seed = 1) () =
  let host = Host.create () in
  (host, Co.create ~host ~m ~seed ())

(* --- Trace --- *)

let test_trace_record () =
  let t = Trace.create () in
  Trace.record t Trace.Read (Trace.Table "A") 3;
  Trace.record t Trace.Write Trace.Scratch 0;
  Alcotest.(check int) "length" 2 (Trace.length t);
  Alcotest.(check int) "reads" 1 (Trace.reads t);
  Alcotest.(check int) "writes" 1 (Trace.writes t);
  Alcotest.(check int) "region count" 1 (Trace.transfers_to_region t Trace.Scratch)

let test_trace_equal_and_divergence () =
  let mk ops =
    let t = Trace.create () in
    List.iter (fun (op, r, i) -> Trace.record t op r i) ops;
    t
  in
  let a = mk [ (Trace.Read, Trace.Cartesian, 0); (Trace.Write, Trace.Output, 1) ] in
  let b = mk [ (Trace.Read, Trace.Cartesian, 0); (Trace.Write, Trace.Output, 2) ] in
  let c = mk [ (Trace.Read, Trace.Cartesian, 0); (Trace.Write, Trace.Output, 1) ] in
  Alcotest.(check bool) "equal" true (Trace.equal a c);
  Alcotest.(check bool) "not equal" false (Trace.equal a b);
  (match Trace.first_divergence a b with
  | Some (1, _, _) -> ()
  | _ -> Alcotest.fail "divergence at 1 expected");
  (* Prefix traces diverge at the end. *)
  let d = mk [ (Trace.Read, Trace.Cartesian, 0) ] in
  match Trace.first_divergence a d with
  | Some (1, Some _, None) -> ()
  | _ -> Alcotest.fail "prefix divergence expected"

let test_trace_growth () =
  (* Force several internal buffer doublings. *)
  let t = Trace.create () in
  for i = 0 to 9999 do
    Trace.record t Trace.Read Trace.Cartesian i
  done;
  Alcotest.(check int) "10000 entries" 10000 (Trace.length t);
  Alcotest.(check int) "last index" 9999
    (match List.rev (Trace.to_list t) with e :: _ -> e.Trace.index | [] -> -1)

(* --- Host --- *)

let test_host_regions () =
  let host = Host.create () in
  let host = Host.define_region host Trace.Scratch ~size:4 in
  Alcotest.(check int) "size" 4 (Host.region_size host Trace.Scratch);
  Host.raw_set host Trace.Scratch 2 "ciphertext";
  Alcotest.(check string) "get" "ciphertext" (Host.raw_get host Trace.Scratch 2)

let test_host_undefined_region () =
  let host = Host.create () in
  Alcotest.check_raises "undefined" (Invalid_argument "Host: undefined region") (fun () ->
      ignore (Host.raw_get host Trace.Buffer 0))

let test_host_empty_slot () =
  let host = Host.create () in
  let host = Host.define_region host Trace.Scratch ~size:2 in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Host.raw_get host Trace.Scratch 0);
       false
     with Invalid_argument _ -> true)

let test_host_persist () =
  let host = Host.create () in
  let host = Host.define_region host Trace.Output ~size:3 in
  List.iteri (fun i c -> Host.raw_set host Trace.Output i c) [ "x"; "y"; "z" ];
  Host.persist host Trace.Output ~count:2;
  Alcotest.(check (list string)) "disk" [ "x"; "y" ] (Host.disk host);
  Alcotest.(check int) "count" 2 (Host.disk_writes host)

(* --- Coprocessor --- *)

let test_co_roundtrip () =
  let host, co = fresh () in
  let (_ : Host.t) = Host.define_region host Trace.Scratch ~size:2 in
  Co.put co Trace.Scratch 0 "hello tuple";
  Alcotest.(check string) "roundtrip" "hello tuple" (Co.get co Trace.Scratch 0);
  Alcotest.(check int) "two transfers" 2 (Co.transfers co)

let test_co_semantic_security () =
  (* Two puts of the same plaintext must produce different ciphertexts. *)
  let host, co = fresh () in
  let (_ : Host.t) = Host.define_region host Trace.Scratch ~size:2 in
  Co.put co Trace.Scratch 0 "same";
  Co.put co Trace.Scratch 1 "same";
  Alcotest.(check bool) "fresh nonces" true
    (not (String.equal (Host.raw_get host Trace.Scratch 0) (Host.raw_get host Trace.Scratch 1)))

let test_co_tamper_detected () =
  let host, co = fresh () in
  let (_ : Host.t) = Host.define_region host Trace.Scratch ~size:1 in
  Co.put co Trace.Scratch 0 "precious";
  Host.tamper host Trace.Scratch 0 ~byte:20;
  Alcotest.(check bool) "raises Tamper_detected" true
    (try
       ignore (Co.get co Trace.Scratch 0);
       false
     with Co.Tamper_detected _ -> true)

let prop_co_tamper_any_byte =
  qtest "any tampered byte is detected" QCheck.(int_range 0 200) (fun byte ->
      let host, co = fresh () in
      let (_ : Host.t) = Host.define_region host Trace.Scratch ~size:1 in
      Co.put co Trace.Scratch 0 (String.make 40 'p');
      Host.tamper host Trace.Scratch 0 ~byte;
      try
        ignore (Co.get co Trace.Scratch 0);
        false
      with Co.Tamper_detected _ -> true)

let test_co_memory_ledger () =
  let _, co = fresh ~m:4 () in
  Co.alloc co 3;
  Alcotest.(check int) "in use" 3 (Co.mem_in_use co);
  Alcotest.(check bool) "overflow raises" true
    (try
       Co.alloc co 2;
       false
     with Co.Memory_exceeded _ -> true);
  Co.free co 3;
  Co.alloc co 4;
  Co.free co 4;
  Alcotest.check_raises "underflow" (Invalid_argument "Coprocessor.free: ledger underflow")
    (fun () -> Co.free co 1)

let test_co_trace_records_everything () =
  let host, co = fresh () in
  let (_ : Host.t) = Host.define_region host Trace.Scratch ~size:4 in
  for i = 0 to 3 do
    Co.put co Trace.Scratch i (string_of_int i)
  done;
  for i = 0 to 3 do
    ignore (Co.get co Trace.Scratch i)
  done;
  let tr = Co.trace co in
  Alcotest.(check int) "8 entries" 8 (Trace.length tr);
  Alcotest.(check int) "4 writes then 4 reads" 4 (Trace.writes tr)

let test_co_load_region_silent () =
  let _, co = fresh () in
  Co.load_region co (Trace.Table "A") [| "t0"; "t1" |];
  Alcotest.(check int) "setup not traced" 0 (Co.transfers co);
  Alcotest.(check string) "readable" "t1" (Co.get co (Trace.Table "A") 1)

let test_co_cycles () =
  let _, co = fresh () in
  Co.tick co 5;
  Co.tick co 5;
  Alcotest.(check int) "cycles" 10 (Co.cycles co)

let test_co_seed_determinism () =
  let _, co1 = fresh ~seed:42 () in
  let _, co2 = fresh ~seed:42 () in
  Alcotest.(check int) "same internal randomness" (Co.fresh_seed co1) (Co.fresh_seed co2)

(* --- Attestation --- *)

let layers =
  [ { Attestation.name = "miniboot"; code = "mb" };
    { Attestation.name = "os"; code = "cpos" };
    { Attestation.name = "app"; code = "join-svc" }
  ]

let test_attestation_ok () =
  let chain = Attestation.certify ~device_key:"dk" layers in
  let expected = List.map Attestation.layer_digest layers in
  Alcotest.(check bool) "verifies" true (Attestation.verify ~device_key:"dk" ~expected chain)

let test_attestation_wrong_key () =
  let chain = Attestation.certify ~device_key:"dk" layers in
  let expected = List.map Attestation.layer_digest layers in
  Alcotest.(check bool) "other key fails" false
    (Attestation.verify ~device_key:"other" ~expected chain)

let test_attestation_modified_code () =
  let chain = Attestation.certify ~device_key:"dk" layers in
  let evil = [ { Attestation.name = "app"; code = "evil" } ] in
  let expected =
    List.map Attestation.layer_digest
      (List.filteri (fun i _ -> i < 2) layers @ evil)
  in
  Alcotest.(check bool) "digest mismatch" false
    (Attestation.verify ~device_key:"dk" ~expected chain)

let test_attestation_truncated_chain () =
  let chain = Attestation.certify ~device_key:"dk" layers in
  let expected = List.map Attestation.layer_digest layers in
  Alcotest.(check bool) "truncated fails" false
    (Attestation.verify ~device_key:"dk" ~expected (List.filteri (fun i _ -> i < 2) chain))

(* --- Channel --- *)

let contract =
  { Channel.contract_id = "c-7";
    providers = [ "pa"; "pb" ];
    recipient = "pc";
    predicate = "eq(key,key)";
  }

let schema = Workload.keyed_schema ()

let relation () =
  let rng = Rng.create 5 in
  Workload.uniform rng ~name:"pa" ~n:13 ~key_domain:7

let test_channel_roundtrip () =
  let p = Channel.party ~id:"pa" ~secret:(String.make 16 's') in
  let r = relation () in
  let s = Channel.submit p contract r in
  match Channel.accept p contract schema s with
  | Ok r' ->
      Alcotest.(check int) "cardinality" (Relation.cardinality r) (Relation.cardinality r');
      Alcotest.(check bool) "tuples preserved" true
        (Array.for_all2 Ppj_relation.Tuple.equal r.Relation.tuples r'.Relation.tuples)
  | Error e -> Alcotest.fail e

let test_channel_contract_mismatch () =
  let p = Channel.party ~id:"pa" ~secret:(String.make 16 's') in
  let s = Channel.submit p contract (relation ()) in
  let other = { contract with Channel.contract_id = "c-8" } in
  Alcotest.(check bool) "rejected" true
    (match Channel.accept p other schema s with Error "contract mismatch" -> true | _ -> false)

let test_channel_wrong_key () =
  let p = Channel.party ~id:"pa" ~secret:(String.make 16 's') in
  let q = Channel.party ~id:"pa" ~secret:(String.make 16 't') in
  let s = Channel.submit p contract (relation ()) in
  Alcotest.(check bool) "auth failure" true
    (match Channel.accept q contract schema s with
    | Error "authentication failure" -> true
    | _ -> false)

let test_channel_result_roundtrip () =
  let p = Channel.party ~id:"pc" ~secret:(String.make 16 'r') in
  let reals = [ Ppj_relation.Decoy.real "aaaa"; Ppj_relation.Decoy.real "bbbb" ] in
  let decoys = [ Ppj_relation.Decoy.decoy ~payload:4 ] in
  let sealed = Channel.seal_result p contract (reals @ decoys) in
  match Channel.open_result p contract sealed with
  | Ok got -> Alcotest.(check (list string)) "decoys dropped" reals got
  | Error e -> Alcotest.fail e

let test_channel_empty_result () =
  let p = Channel.party ~id:"pc" ~secret:(String.make 16 'r') in
  let sealed = Channel.seal_result p contract [] in
  match Channel.open_result p contract sealed with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "expected empty"
  | Error e -> Alcotest.fail e

let test_handshake_agreement () =
  let rng = Rng.create 31 in
  let mac_key = "identity-mac-key" in
  let h, x = Channel.Handshake.hello rng ~id:"pa" ~mac_key in
  match Channel.Handshake.respond rng ~mac_key h with
  | Error e -> Alcotest.fail e
  | Ok (reply, t_side) -> (
      match Channel.Handshake.finish ~id:"pa" ~mac_key ~exponent:x reply with
      | Error e -> Alcotest.fail e
      | Ok requester_side ->
          (* Both ends derive the same key: a message sealed by one opens
             at the other. *)
          let contract =
            { Channel.contract_id = "hs"; providers = [ "pa" ]; recipient = "pa"; predicate = "p" }
          in
          let sealed = Channel.seal_result requester_side contract [ Ppj_relation.Decoy.real "abcd" ] in
          (match Channel.open_result t_side contract sealed with
          | Ok [ o ] -> Alcotest.(check string) "payload" "abcd" (Ppj_relation.Decoy.payload o)
          | _ -> Alcotest.fail "shared key mismatch"))

let test_handshake_rejects_forged_hello () =
  let rng = Rng.create 32 in
  let h, _ = Channel.Handshake.hello rng ~id:"pa" ~mac_key:"good-key" in
  (* MITM replaces the public value. *)
  let h' = Channel.Handshake.corrupt_hello h in
  Alcotest.(check bool) "rejected" true
    (match Channel.Handshake.respond rng ~mac_key:"good-key" h' with Error _ -> true | Ok _ -> false)

let test_handshake_rejects_wrong_identity_key () =
  let rng = Rng.create 33 in
  let h, _ = Channel.Handshake.hello rng ~id:"pa" ~mac_key:"key-one" in
  Alcotest.(check bool) "rejected" true
    (match Channel.Handshake.respond rng ~mac_key:"key-two" h with Error _ -> true | Ok _ -> false)

let test_handshake_reply_authenticated () =
  let rng = Rng.create 34 in
  let h, x = Channel.Handshake.hello rng ~id:"pa" ~mac_key:"k" in
  match Channel.Handshake.respond rng ~mac_key:"k" h with
  | Error e -> Alcotest.fail e
  | Ok (_reply, _) -> (
      (* An attacker substituting its own reply fails the finish check. *)
      let fake, _ = Channel.Handshake.hello rng ~id:"pa" ~mac_key:"k" in
      match Channel.Handshake.respond rng ~mac_key:"attacker" fake with
      | Ok _ -> Alcotest.fail "attacker should not authenticate"
      | Error _ -> (
          match
            Channel.Handshake.finish ~id:"pa" ~mac_key:"k" ~exponent:(x + 1)
              (match Channel.Handshake.respond rng ~mac_key:"k" h with
              | Ok (r, _) -> r
              | Error e -> Alcotest.fail e)
          with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "mismatched exponent must fail the MAC"))

let flip_last s =
  let b = Bytes.of_string s in
  let i = Bytes.length b - 1 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
  Bytes.to_string b

let test_handshake_rejects_tampered_hello_mac () =
  let rng = Rng.create 35 in
  let h, _ = Channel.Handshake.hello rng ~id:"pa" ~mac_key:"k" in
  let h' = { h with Channel.Handshake.mac = flip_last h.Channel.Handshake.mac } in
  match Channel.Handshake.respond rng ~mac_key:"k" h' with
  | Error e -> Alcotest.(check bool) "useful error" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "hello with a flipped MAC bit authenticated"

let test_handshake_rejects_tampered_reply_mac () =
  let rng = Rng.create 36 in
  let h, x = Channel.Handshake.hello rng ~id:"pa" ~mac_key:"k" in
  match Channel.Handshake.respond rng ~mac_key:"k" h with
  | Error e -> Alcotest.fail e
  | Ok (reply, _) -> (
      let reply' = { reply with Channel.Handshake.mac = flip_last reply.Channel.Handshake.mac } in
      match Channel.Handshake.finish ~id:"pa" ~mac_key:"k" ~exponent:x reply' with
      | Error e -> Alcotest.(check bool) "useful error" true (String.length e > 0)
      | Ok _ -> Alcotest.fail "reply with a flipped MAC bit authenticated")

let test_handshake_rejects_wrong_key_at_finish () =
  let rng = Rng.create 37 in
  let h, x = Channel.Handshake.hello rng ~id:"pa" ~mac_key:"k" in
  match Channel.Handshake.respond rng ~mac_key:"k" h with
  | Error e -> Alcotest.fail e
  | Ok (reply, _) -> (
      match Channel.Handshake.finish ~id:"pa" ~mac_key:"other-key" ~exponent:x reply with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "finish accepted a reply under the wrong identity key")

let test_handshake_replay_rejected () =
  let rng = Rng.create 38 in
  let guard = Channel.Handshake.responder () in
  let h, x = Channel.Handshake.hello rng ~id:"pa" ~mac_key:"k" in
  (match Channel.Handshake.respond_guarded guard rng ~mac_key:"k" h with
  | Error e -> Alcotest.fail e
  | Ok (reply, _) -> (
      match Channel.Handshake.finish ~id:"pa" ~mac_key:"k" ~exponent:x reply with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e));
  (* Same hello again: a captured first flight must not open a second
     session. *)
  (match Channel.Handshake.respond_guarded guard rng ~mac_key:"k" h with
  | Error e -> Alcotest.(check string) "reason" "handshake: replayed hello" e
  | Ok _ -> Alcotest.fail "replayed hello answered");
  (* A fresh hello from the same identity is still fine. *)
  let h2, _ = Channel.Handshake.hello rng ~id:"pa" ~mac_key:"k" in
  match Channel.Handshake.respond_guarded guard rng ~mac_key:"k" h2 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_direction_nonces_disjoint () =
  (* Both ends of a DH-derived session hold the same OCB key, so the two
     directions must never seal under the same nonce: the responder's
     nonce stream (handed out by [respond]) has to be disjoint from the
     initiator's (handed out by [finish]) at every counter position. *)
  let rng = Rng.create 39 in
  let mac_key = "k" in
  let h, x = Channel.Handshake.hello rng ~id:"pa" ~mac_key in
  match Channel.Handshake.respond rng ~mac_key h with
  | Error e -> Alcotest.fail e
  | Ok (reply, t_side) -> (
      match Channel.Handshake.finish ~id:"pa" ~mac_key ~exponent:x reply with
      | Error e -> Alcotest.fail e
      | Ok requester_side ->
          let nonce_of sealed = String.sub sealed 0 16 in
          let stream p = List.init 64 (fun i -> nonce_of (Channel.seal p (string_of_int i))) in
          let initiator = stream requester_side in
          let responder = stream t_side in
          List.iter
            (fun n ->
              if List.mem n responder then
                Alcotest.fail "initiator and responder drew the same nonce")
            initiator;
          (* Disjoint nonces, same key: traffic still opens across
             directions. *)
          let sealed = Channel.seal t_side "from-T" in
          (match Channel.open_sealed requester_side sealed with
          | Ok "from-T" -> ()
          | _ -> Alcotest.fail "responder-sealed message did not open at the initiator"))

let test_replay_guard_bounded () =
  let rng = Rng.create 40 in
  let guard = Channel.Handshake.responder ~capacity:2 () in
  let answer h =
    match Channel.Handshake.respond_guarded guard rng ~mac_key:"k" h with
    | Ok _ -> `Answered
    | Error _ -> `Rejected
  in
  let hello () = fst (Channel.Handshake.hello rng ~id:"pa" ~mac_key:"k") in
  let h1 = hello () and h2 = hello () and h3 = hello () in
  Alcotest.(check bool) "h1 answered" true (answer h1 = `Answered);
  Alcotest.(check bool) "h2 answered" true (answer h2 = `Answered);
  Alcotest.(check bool) "h2 replay rejected" true (answer h2 = `Rejected);
  (* A third handshake evicts the oldest entry... *)
  Alcotest.(check bool) "h3 answered" true (answer h3 = `Answered);
  (* ...so the guard still rejects replays inside its window... *)
  Alcotest.(check bool) "h3 replay rejected" true (answer h3 = `Rejected);
  Alcotest.(check bool) "h2 replay still rejected" true (answer h2 = `Rejected);
  (* ...while the evicted h1 falls outside it (the documented bound). *)
  Alcotest.(check bool) "evicted h1 is answerable again" true (answer h1 = `Answered)

let test_channel_bad_secret_length () =
  Alcotest.check_raises "16 bytes" (Invalid_argument "Channel.party: secret must be 16 bytes")
    (fun () -> ignore (Channel.party ~id:"x" ~secret:"short"))

let () =
  Alcotest.run "scpu"
    [ ( "trace",
        [ Alcotest.test_case "record and count" `Quick test_trace_record;
          Alcotest.test_case "equality and divergence" `Quick test_trace_equal_and_divergence;
          Alcotest.test_case "growth" `Quick test_trace_growth
        ] );
      ( "host",
        [ Alcotest.test_case "regions" `Quick test_host_regions;
          Alcotest.test_case "undefined region" `Quick test_host_undefined_region;
          Alcotest.test_case "empty slot" `Quick test_host_empty_slot;
          Alcotest.test_case "persist" `Quick test_host_persist
        ] );
      ( "coprocessor",
        [ Alcotest.test_case "get/put roundtrip" `Quick test_co_roundtrip;
          Alcotest.test_case "semantic security" `Quick test_co_semantic_security;
          Alcotest.test_case "tamper detection" `Quick test_co_tamper_detected;
          Alcotest.test_case "memory ledger" `Quick test_co_memory_ledger;
          Alcotest.test_case "trace completeness" `Quick test_co_trace_records_everything;
          Alcotest.test_case "setup not traced" `Quick test_co_load_region_silent;
          Alcotest.test_case "cycle counter" `Quick test_co_cycles;
          Alcotest.test_case "seeded determinism" `Quick test_co_seed_determinism;
          prop_co_tamper_any_byte
        ] );
      ( "attestation",
        [ Alcotest.test_case "valid chain" `Quick test_attestation_ok;
          Alcotest.test_case "wrong device key" `Quick test_attestation_wrong_key;
          Alcotest.test_case "modified code" `Quick test_attestation_modified_code;
          Alcotest.test_case "truncated chain" `Quick test_attestation_truncated_chain
        ] );
      ( "channel",
        [ Alcotest.test_case "submit/accept roundtrip" `Quick test_channel_roundtrip;
          Alcotest.test_case "contract mismatch" `Quick test_channel_contract_mismatch;
          Alcotest.test_case "wrong key" `Quick test_channel_wrong_key;
          Alcotest.test_case "result roundtrip" `Quick test_channel_result_roundtrip;
          Alcotest.test_case "empty result" `Quick test_channel_empty_result;
          Alcotest.test_case "bad secret length" `Quick test_channel_bad_secret_length;
          Alcotest.test_case "handshake key agreement" `Quick test_handshake_agreement;
          Alcotest.test_case "handshake forged hello" `Quick test_handshake_rejects_forged_hello;
          Alcotest.test_case "handshake wrong identity" `Quick test_handshake_rejects_wrong_identity_key;
          Alcotest.test_case "handshake reply auth" `Quick test_handshake_reply_authenticated;
          Alcotest.test_case "handshake tampered hello mac" `Quick
            test_handshake_rejects_tampered_hello_mac;
          Alcotest.test_case "handshake tampered reply mac" `Quick
            test_handshake_rejects_tampered_reply_mac;
          Alcotest.test_case "handshake wrong key at finish" `Quick
            test_handshake_rejects_wrong_key_at_finish;
          Alcotest.test_case "handshake replay rejected" `Quick test_handshake_replay_rejected;
          Alcotest.test_case "direction nonces disjoint" `Quick test_direction_nonces_disjoint;
          Alcotest.test_case "replay guard bounded" `Quick test_replay_guard_bounded
        ] )
    ]
