(* The closed-form cost model (§4.6, Table 5.1, Eqns. 5.2/5.3/5.7/5.8):
   reproduction of the paper's published numbers and validation of the
   formulas against the measured transfer counts of the executable
   algorithms. *)

open Ppj_core
module W = Ppj_relation.Workload
module P = Ppj_relation.Predicate
module Rng = Ppj_crypto.Rng

let within_pct ~pct got want =
  let err = Float.abs (got -. want) /. want in
  if err > pct /. 100. then
    Alcotest.failf "got %.4g, want %.4g (%.1f%% off, tolerance %.0f%%)" got want
      (100. *. err) pct

(* --- Chapter 4 formulas --- *)

let test_alg1_formula_components () =
  (* |A| + 2N|A| + 2|A||B| + 2|A||B|(log2 2N)^2 at friendly values. *)
  let v = Cost.alg1 ~a:10 ~b:20 ~n:4 in
  let expect = 10. +. 80. +. 400. +. (400. *. 9.) in
  Alcotest.(check (float 1e-6)) "closed form" expect v

let test_alg2_formula () =
  (* gamma = ceil(4/2) = 2. *)
  Alcotest.(check (float 1e-6)) "closed form"
    (10. +. 40. +. (2. *. 200.))
    (Cost.alg2 ~a:10 ~b:20 ~n:4 ~m:2 ())

let test_alg3_formula () =
  let lg = log 16. /. log 2. in
  Alcotest.(check (float 1e-6)) "closed form"
    (10. +. 40. +. (16. *. lg *. lg) +. (3. *. 160.))
    (Cost.alg3 ~a:10 ~b:16 ~n:4 ());
  Alcotest.(check (float 1e-6)) "presorted drops the sort"
    (10. +. 40. +. (3. *. 160.))
    (Cost.alg3 ~a:10 ~b:16 ~n:4 ~presorted:true ())

let test_gamma1_alg2_dominates () =
  (* §4.6.1: with γ = 1 Algorithm 2 beats 1 and 3 even at its worst α. *)
  let b = 10_000 in
  let m = 200 in
  List.iter
    (fun n ->
      let c2 = Cost.alg2 ~a:b ~b ~n ~m () in
      Alcotest.(check bool) "beats alg1" true (c2 < Cost.alg1 ~a:b ~b ~n);
      Alcotest.(check bool) "beats alg3" true (c2 < Cost.alg3 ~a:b ~b ~n ()))
    [ 1; 10; 100; 200 ]

let test_general_crossover () =
  (* §4.6.2: with α at its minimum, Algorithm 1 wins once γ > ~4. *)
  let b = 100_000 in
  let n = 1 in
  Alcotest.(check bool) "gamma 1: alg2" true (Cost.general_winner ~b ~n ~m:n = Cost.A2);
  (* §4.6.2's threshold is gamma > 2 + alpha + 2(log2 2·alpha·|B|)^2; at
     alpha = 400/100000 that is ~190, so gamma = 200 flips the winner. *)
  let n = 400 and m = 2 in
  Alcotest.(check bool) "gamma 200: alg1" true (Cost.general_winner ~b ~n ~m = Cost.A1)

let test_equijoin_winner_alg3_region () =
  (* §4.6.3: for equijoins with γ >= 4, Algorithm 3 wins. *)
  let b = 100_000 and n = 400 and m = 10 in
  Alcotest.(check bool) "alg3 wins" true (Cost.equijoin_winner ~b ~n ~m = Cost.A3)

let test_sfe_orders_of_magnitude () =
  (* §4.6.5: SFE is orders of magnitude more expensive for low α. *)
  let b = 10_000 and n = 10 and w = 64 in
  let sfe = Cost.sfe_bits ~b ~n ~w () in
  let a1 = Cost.alg1_bits ~a:b ~b ~n ~w in
  Alcotest.(check bool) "at least 100x" true (sfe > 100. *. a1)

(* --- Chapter 5 formulas at the paper's settings (Table 5.2/5.3) --- *)

let settings = [ (640_000, 6_400, 64); (640_000, 6_400, 256); (2_560_000, 25_600, 256) ]

let test_smc_table53 () =
  (* Paper: 1.1e10, 1.1e10, 4.5e10. *)
  List.iter2
    (fun (l, s, _) want -> within_pct ~pct:5. (Cost.smc ~l ~s ()) want)
    settings
    [ 1.1e10; 1.1e10; 4.5e10 ]

let test_alg4_table53 () =
  (* Paper: 2.3e8, 2.3e8, 1.2e9.  Our Δ* optimisation is slightly better
     than the paper's approximate fixed point, so allow a wider band; the
     ordering and magnitude are the reproduction target. *)
  List.iter2
    (fun (l, s, _) want -> within_pct ~pct:35. (Cost.alg4 ~l ~s) want)
    settings
    [ 2.3e8; 2.3e8; 1.2e9 ]

let test_alg5_table53 () =
  (* Paper: 6.4e7, 1.6e7, 2.6e8 — these are exact. *)
  List.iter2
    (fun (l, s, m) want -> within_pct ~pct:2. (Cost.alg5 ~l ~s ~m) want)
    settings
    [ 6.4e7; 1.6e7; 2.6e8 ]

let test_alg6_table53 () =
  (* Paper: eps=1e-20 -> 7.4e6, 3.4e6, 1.8e7; eps=1e-10 -> 4.6e6, 2.8e6, 1.5e7. *)
  List.iter2
    (fun (l, s, m) (w20, w10) ->
      within_pct ~pct:40. (Cost.alg6 ~l ~s ~m ~eps:1e-20) w20;
      within_pct ~pct:40. (Cost.alg6 ~l ~s ~m ~eps:1e-10) w10)
    settings
    [ (7.4e6, 4.6e6); (3.4e6, 2.8e6); (1.8e7, 1.5e7) ]

let test_table53_orderings () =
  (* The qualitative content of Table 5.3: SMC >> Alg4 > Alg5 > Alg6, and
     Alg6 gets cheaper as eps grows. *)
  List.iter
    (fun (l, s, m) ->
      let smc = Cost.smc ~l ~s () in
      let a4 = Cost.alg4 ~l ~s in
      let a5 = Cost.alg5 ~l ~s ~m in
      let a620 = Cost.alg6 ~l ~s ~m ~eps:1e-20 in
      let a610 = Cost.alg6 ~l ~s ~m ~eps:1e-10 in
      Alcotest.(check bool) "smc > alg4 x10" true (smc > 10. *. a4);
      Alcotest.(check bool) "alg4 > alg5" true (a4 > a5);
      Alcotest.(check bool) "alg5 > alg6" true (a5 > a620);
      Alcotest.(check bool) "alg6 monotone in eps" true (a610 <= a620))
    settings

let test_cost_reduction_row () =
  (* Last row of Table 5.3: reduction of Alg6(1e-20) vs Alg5 = 88%, 79%,
     93%. *)
  List.iter2
    (fun (l, s, m) want ->
      let red = 1. -. (Cost.alg6 ~l ~s ~m ~eps:1e-20 /. Cost.alg5 ~l ~s ~m) in
      within_pct ~pct:8. red want)
    settings
    [ 0.88; 0.79; 0.93 ]

let test_fig51_shape () =
  (* Figure 5.1: Algorithm 5's cost falls roughly as 1/M, steeply for
     small M, approaching L + S as M -> S. *)
  let l, s = (640_000, 6_400) in
  let costs = List.map (fun m -> Cost.alg5 ~l ~s ~m) [ 2; 8; 64; 512; 6_400 ] in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a > b && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone decreasing" true (decreasing costs);
  Alcotest.(check (float 1e-6)) "floor at L + S"
    (float_of_int (l + s))
    (List.nth costs 4)

let test_fig52_shape () =
  (* Figure 5.2: Algorithm 6's cost decreases monotonically in eps, and
     the marginal gain shrinks as eps grows (trade when eps is small). *)
  let l, s, m = (640_000, 6_400, 64) in
  let at e = Cost.alg6 ~l ~s ~m ~eps:e in
  let c60 = at 1e-60 and c50 = at 1e-50 and c20 = at 1e-20 and c10 = at 1e-10 in
  Alcotest.(check bool) "monotone" true (c60 > c50 && c50 > c20 && c20 > c10);
  Alcotest.(check bool) "diminishing returns" true (c60 -. c50 > c20 -. c10)

let test_fig53_shape () =
  (* Figure 5.3: cost vs memory at eps = 1e-20; reaches L + S once
     M >= S. *)
  let l, s = (640_000, 6_400) in
  let at m = Cost.alg6 ~l ~s ~m ~eps:1e-20 in
  Alcotest.(check bool) "monotone in M" true (at 16 > at 64 && at 64 > at 1024);
  Alcotest.(check (float 1e-6)) "floor" (float_of_int (l + s)) (at 6_400)

(* --- Measured-vs-formula validation at executable scale --- *)

let measured_vs_formula ~name ~pct ~formula ~run () =
  let got = float_of_int (run ()) in
  within_pct ~pct got (formula ());
  ignore name

let small_instance ?(m = 4) ?(na = 12) ?(nb = 16) ?(matches = 12) ?(mult = 3) () =
  let rng = Rng.create 77 in
  let a, b = W.equijoin_pair rng ~na ~nb ~matches ~max_multiplicity:mult in
  Instance.create ~m ~seed:5 ~predicate:(P.equijoin2 "key" "key") [ a; b ]

let test_measured_alg2 =
  (* Algorithm 2's formula is exact up to the blk*gamma >= N padding. *)
  measured_vs_formula ~name:"alg2" ~pct:10.
    ~formula:(fun () -> Cost.alg2 ~a:12 ~b:16 ~n:3 ~m:4 ())
    ~run:(fun () ->
      let inst = small_instance () in
      (Algorithm2.run inst ~n:3 ()).Report.transfers)

let test_measured_alg5 =
  (* S + ceil(S/M) L, exactly. *)
  measured_vs_formula ~name:"alg5" ~pct:0.5
    ~formula:(fun () -> Cost.alg5 ~l:(12 * 16) ~s:12 ~m:4)
    ~run:(fun () ->
      let inst = small_instance () in
      (Algorithm5.run inst).Report.transfers)

let test_measured_alg4_order () =
  (* Algorithm 4's measured cost: the 2L term is exact; the filter term
     uses power-of-two padded networks whose overhead shrinks with scale
     (ratio 3.3 at L = 192, 2.5 at L = 1536), so compare within a factor
     of four at this scale. *)
  let inst = small_instance () in
  let r = Algorithm4.run inst () in
  let formula = Cost.alg4 ~l:192 ~s:12 in
  let ratio = float_of_int r.Report.transfers /. formula in
  Alcotest.(check bool) "within 4x" true (ratio < 4. && ratio > 1. /. 4.)

let test_measured_alg1_order () =
  let inst = small_instance () in
  let r = Algorithm1.run inst ~n:3 in
  let formula = Cost.alg1 ~a:12 ~b:16 ~n:3 in
  let ratio = float_of_int r.Report.transfers /. formula in
  Alcotest.(check bool) "within 3x" true (ratio < 3. && ratio > 1. /. 3.)

let test_measured_alg3_order () =
  let inst = small_instance () in
  let r = Algorithm3.run inst ~n:3 ~attr_a:"key" ~attr_b:"key" () in
  let formula = Cost.alg3 ~a:12 ~b:16 ~n:3 () in
  let ratio = float_of_int r.Report.transfers /. formula in
  Alcotest.(check bool) "within 3x" true (ratio < 3. && ratio > 1. /. 3.)

let test_measured_alg7_exact () =
  (* Cost.alg7 mirrors the implementation transfer for transfer. *)
  let inst = small_instance () in
  let r, st = Algorithm7.run inst ~attr_a:"key" ~attr_b:"key" in
  Alcotest.(check (float 0.)) "exact"
    (Cost.alg7 ~a:12 ~b:16 ~s:st.Algorithm7.s)
    (float_of_int r.Report.transfers)

let test_measured_alg8_exact () =
  let check_at ~na ~nb ~matches ~mult =
    let rng = Rng.create 177 in
    let a, b = W.equijoin_pair rng ~na ~nb ~matches ~max_multiplicity:mult in
    let inst = Instance.create ~m:4 ~seed:5 ~predicate:(P.equijoin2 "key" "key") [ a; b ] in
    let r, st = Algorithm8.run inst ~attr_a:"key" ~attr_b:"key" in
    Alcotest.(check (float 0.))
      (Printf.sprintf "exact at %dx%d" na nb)
      (Cost.alg8 ~a:na ~b:nb ~s:st.Algorithm8.s)
      (float_of_int r.Report.transfers)
  in
  check_at ~na:12 ~nb:16 ~matches:12 ~mult:3;
  check_at ~na:7 ~nb:9 ~matches:0 ~mult:1;
  check_at ~na:5 ~nb:30 ~matches:20 ~mult:4

(* --- Degenerate-input guards ---
   log2 of 0 is -inf; before the guards a degenerate size silently
   "won" every argmin.  Both winner paths must refuse instead. *)

let raises_invalid f = match f () with
  | exception Invalid_argument _ -> true
  | _ -> false

let test_degenerate_inputs_rejected () =
  Alcotest.(check bool) "alg1 n=0" true (raises_invalid (fun () -> Cost.alg1 ~a:10 ~b:10 ~n:0));
  Alcotest.(check bool) "alg1_variant b=0" true (raises_invalid (fun () -> Cost.alg1_variant ~a:10 ~b:0));
  Alcotest.(check bool) "alg3 b=0" true (raises_invalid (fun () -> Cost.alg3 ~a:10 ~b:0 ~n:2 ()));
  Alcotest.(check bool) "alg7 a=0" true (raises_invalid (fun () -> Cost.alg7 ~a:0 ~b:10 ~s:0));
  Alcotest.(check bool) "alg8 s<0" true (raises_invalid (fun () -> Cost.alg8 ~a:10 ~b:10 ~s:(-1)))

let test_degenerate_winner_paths_rejected () =
  (* The general path dies in alg1's N guard, the equijoin path (also
     containing alg3) in either; neither may return a winner. *)
  Alcotest.(check bool) "general_winner n=0" true
    (raises_invalid (fun () -> Cost.general_winner ~b:16 ~n:0 ~m:4));
  Alcotest.(check bool) "equijoin_winner n=0" true
    (raises_invalid (fun () -> Cost.equijoin_winner ~b:16 ~n:0 ~m:4));
  Alcotest.(check bool) "equijoin_winner b=0" true
    (raises_invalid (fun () -> Cost.equijoin_winner ~b:0 ~n:2 ~m:4));
  (* Healthy inputs still produce winners on both paths. *)
  let (_ : Cost.ch4_algorithm) = Cost.general_winner ~b:16 ~n:2 ~m:4 in
  let (_ : Cost.ch4_algorithm) = Cost.equijoin_winner ~b:16 ~n:2 ~m:4 in
  ()

(* --- Planner --- *)

let test_planner_prefers_alg6_when_allowed () =
  let plan, cost = Planner.choose ~l:640_000 ~s:6_400 ~m:64 ~max_eps:1e-20 () in
  (match plan with
  | Planner.Use_alg6 { eps } -> Alcotest.(check (float 0.)) "eps" 1e-20 eps
  | _ -> Alcotest.fail "expected Algorithm 6");
  Alcotest.(check bool) "cost matches formula" true
    (Float.abs (cost -. Cost.alg6 ~l:640_000 ~s:6_400 ~m:64 ~eps:1e-20) < 1.)

let test_planner_exact_only () =
  (* max_eps = 0 rules out Algorithm 6; Algorithm 5 wins at these sizes. *)
  match Planner.choose ~l:640_000 ~s:6_400 ~m:64 ~max_eps:0. () with
  | Planner.Use_alg5, _ -> ()
  | _ -> Alcotest.fail "expected Algorithm 5"

let test_planner_alg4_when_memory_tiny () =
  (* With M = 1 Algorithm 5 costs S*L; Algorithm 4 wins. *)
  match Planner.choose ~l:10_000 ~s:2_000 ~m:1 ~max_eps:0. () with
  | Planner.Use_alg4, _ -> ()
  | _ -> Alcotest.fail "expected Algorithm 4"

let test_planner_alg8_with_ab () =
  (* Given (|A|, |B|) the planner admits Algorithm 8, whose
     n-log-squared cost beats Algorithm 5's S/M scans here; without
     [ab] the same point keeps its old winner. *)
  (match Planner.choose ~ab:(800, 800) ~l:640_000 ~s:800 ~m:64 ~max_eps:0. () with
  | Planner.Use_alg8, cost ->
      Alcotest.(check (float 0.)) "cost is alg8's" (Cost.alg8 ~a:800 ~b:800 ~s:800) cost
  | _ -> Alcotest.fail "expected Algorithm 8");
  match Planner.choose ~l:640_000 ~s:800 ~m:64 ~max_eps:0. () with
  | Planner.Use_alg8, _ -> Alcotest.fail "alg8 offered without ab"
  | _ -> ()

let test_planner_ch4 () =
  let alg, _ = Planner.choose_ch4 ~a:100_000 ~b:100_000 ~n:400 ~m:2 ~equijoin:false in
  Alcotest.(check bool) "alg1 at huge gamma" true (alg = Cost.A1);
  let alg, _ = Planner.choose_ch4 ~a:100_000 ~b:100_000 ~n:400 ~m:2 ~equijoin:true in
  Alcotest.(check bool) "alg3 for equijoins" true (alg = Cost.A3);
  let alg, _ = Planner.choose_ch4 ~a:1_000 ~b:1_000 ~n:4 ~m:64 ~equijoin:true in
  Alcotest.(check bool) "alg2 at gamma 1" true (alg = Cost.A2)

(* --- Params --- *)

let test_params () =
  Alcotest.(check int) "gamma" 3 (Params.gamma ~n:5 ~m:2 ());
  Alcotest.(check int) "gamma floor" 1 (Params.gamma ~n:1 ~m:64 ());
  Alcotest.(check int) "blk" 2 (Params.blk ~n:5 ~gamma:3);
  Alcotest.(check int) "segments" 92 (Params.segments ~l:640 ~n_star:7);
  Alcotest.(check int) "scans" 3 (Params.scans ~s:12 ~m:5);
  Alcotest.(check (float 1e-9)) "alpha" 0.25 (Params.alpha ~n:4 ~b:16)

let test_params_partition () =
  (match Params.algorithm2_partition ~n:100 ~m:10 () with
  | `Stream_b (fb, fj) ->
      Alcotest.(check bool) "fb + fj = m" true (fb + fj = 10);
      Alcotest.(check bool) "fj = blk" true (fj = Params.blk ~n:100 ~gamma:(Params.gamma ~n:100 ~m:10 ()))
  | `Block_a _ -> Alcotest.fail "expected streaming case");
  match Params.algorithm2_partition ~n:3 ~m:20 () with
  | `Block_a (q, _, fj) ->
      Alcotest.(check int) "Q" 5 q;
      Alcotest.(check int) "fj = QN" 15 fj
  | `Stream_b _ -> Alcotest.fail "expected blocking case"

let () =
  Alcotest.run "cost"
    [ ( "chapter4",
        [ Alcotest.test_case "alg1 closed form" `Quick test_alg1_formula_components;
          Alcotest.test_case "alg2 closed form" `Quick test_alg2_formula;
          Alcotest.test_case "alg3 closed form" `Quick test_alg3_formula;
          Alcotest.test_case "gamma=1: alg2 dominates" `Quick test_gamma1_alg2_dominates;
          Alcotest.test_case "general crossover" `Quick test_general_crossover;
          Alcotest.test_case "equijoin alg3 region" `Quick test_equijoin_winner_alg3_region;
          Alcotest.test_case "SFE gap" `Quick test_sfe_orders_of_magnitude
        ] );
      ( "table5.3",
        [ Alcotest.test_case "SMC row" `Quick test_smc_table53;
          Alcotest.test_case "Algorithm 4 row" `Quick test_alg4_table53;
          Alcotest.test_case "Algorithm 5 row" `Quick test_alg5_table53;
          Alcotest.test_case "Algorithm 6 rows" `Quick test_alg6_table53;
          Alcotest.test_case "orderings" `Quick test_table53_orderings;
          Alcotest.test_case "cost-reduction row" `Quick test_cost_reduction_row
        ] );
      ( "figures",
        [ Alcotest.test_case "fig 5.1 shape" `Quick test_fig51_shape;
          Alcotest.test_case "fig 5.2 shape" `Quick test_fig52_shape;
          Alcotest.test_case "fig 5.3 shape" `Quick test_fig53_shape
        ] );
      ( "measured-vs-formula",
        [ Alcotest.test_case "alg2 near-exact" `Quick test_measured_alg2;
          Alcotest.test_case "alg5 exact" `Quick test_measured_alg5;
          Alcotest.test_case "alg4 order" `Quick test_measured_alg4_order;
          Alcotest.test_case "alg1 order" `Quick test_measured_alg1_order;
          Alcotest.test_case "alg3 order" `Quick test_measured_alg3_order;
          Alcotest.test_case "alg7 exact" `Quick test_measured_alg7_exact;
          Alcotest.test_case "alg8 exact" `Quick test_measured_alg8_exact
        ] );
      ( "guards",
        [ Alcotest.test_case "degenerate inputs rejected" `Quick test_degenerate_inputs_rejected;
          Alcotest.test_case "winner paths rejected" `Quick test_degenerate_winner_paths_rejected
        ] );
      ( "planner",
        [ Alcotest.test_case "prefers alg6" `Quick test_planner_prefers_alg6_when_allowed;
          Alcotest.test_case "exact only" `Quick test_planner_exact_only;
          Alcotest.test_case "alg4 for tiny memory" `Quick test_planner_alg4_when_memory_tiny;
          Alcotest.test_case "alg8 needs ab" `Quick test_planner_alg8_with_ab;
          Alcotest.test_case "chapter 4 choices" `Quick test_planner_ch4
        ] );
      ( "params",
        [ Alcotest.test_case "basics" `Quick test_params;
          Alcotest.test_case "memory partition" `Quick test_params_partition
        ] )
    ]
