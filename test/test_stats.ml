(* The live telemetry plane: the v4 stats exchange on the wire, scrapes
   in any session phase, shard federation with mergeable reservoirs, and
   the privacy lint that licenses exposing scrapes to an untrusted
   monitoring plane. *)

open Ppj_net
module Ch = Ppj_scpu.Channel
module W = Ppj_relation.Workload
module P = Ppj_relation.Predicate
module Rng = Ppj_crypto.Rng
module Service = Ppj_core.Service
module Privacy = Ppj_core.Privacy
module Instance = Ppj_core.Instance
module Report = Ppj_core.Report
module Core = Ppj_core
module Registry = Ppj_obs.Registry
module Snapshot = Ppj_obs.Snapshot
module Histogram = Ppj_obs.Histogram
module Shards = Ppj_shard.Shards
module Coordinator = Ppj_shard.Coordinator
module Partitioner = Ppj_shard.Partitioner

let mac_key = "test-stats-mac-key"
let schema = W.keyed_schema ()

let contract =
  { Ch.contract_id = "contract-stats-001";
    providers = [ "alice"; "bob" ];
    recipient = "carol";
    predicate = "eq(key,key)";
  }

let workload ?(seed = 11) () =
  let rng = Rng.create seed in
  W.equijoin_pair rng ~na:12 ~nb:18 ~matches:14 ~max_multiplicity:3

let no_sleep = { Client.default_config with recv_timeout = 0.05; sleep = ignore }
let client ?registry server = Client.create ~config:no_sleep ?registry (Transport.loopback server)

let ok = function Ok v -> v | Error e -> Alcotest.fail e

(* --- wire codec -------------------------------------------------------- *)

let roundtrip msg =
  match Wire.of_frame (Wire.to_frame ~seq:3 msg) with
  | Ok m -> m
  | Error e -> Alcotest.failf "round trip failed: %s" e

let test_wire_stats_round_trip () =
  Alcotest.(check bool) "request" true (roundtrip Wire.Stats_request = Wire.Stats_request);
  List.iter
    (fun store ->
      let info =
        { Wire.server_version = "0.3.0";
          wire_version = Wire.version;
          uptime_seconds = 12.5;
          sessions_active = 2;
          sessions_closed = 40;
          conns_live = 3;
          queue_bytes = 4096;
          store;
          ready = (store <> Wire.Store_open { epoch = 9; sealed = true });
        }
      in
      let msg = Wire.Stats_reply { info; snapshot = "{\"schema\":\"ppj.obs/1\"}" } in
      Alcotest.(check bool) "reply" true (roundtrip msg = msg))
    [ Wire.Store_none;
      Wire.Store_open { epoch = 0; sealed = false };
      Wire.Store_open { epoch = 9; sealed = true }
    ]

let test_wire_version_is_4 () =
  (* The stats exchange is a grammar extension: v3 peers must refuse us
     rather than mis-decode tag 16. *)
  Alcotest.(check bool) "v4 or later" true (Wire.version >= 4);
  Alcotest.(check string) "tag names" "stats-request"
    (Wire.tag_name (Wire.tag_of Wire.Stats_request))

(* --- scrape in any phase ----------------------------------------------- *)

let stats_reply_of_frames = function
  | [ f ] -> (
      match Wire.of_frame f with
      | Ok (Wire.Stats_reply { info; snapshot }) -> (f.Frame.seq, info, snapshot)
      | Ok m -> Alcotest.failf "unexpected reply %a" Wire.pp m
      | Error e -> Alcotest.fail e)
  | l -> Alcotest.failf "expected one reply, got %d" (List.length l)

let test_stats_before_attestation () =
  let server = Server.create ~mac_key ~seed:5 () in
  let session = Server.open_session server in
  let seq, info, snapshot =
    stats_reply_of_frames
      (Server.handle_frame server session (Wire.to_frame ~seq:41 Wire.Stats_request))
  in
  Alcotest.(check int) "seq echoed" 41 seq;
  Alcotest.(check bool) "ready without a store" true info.Wire.ready;
  Alcotest.(check int) "wire version" Wire.version info.Wire.wire_version;
  Alcotest.(check bool) "no store" true (info.Wire.store = Wire.Store_none);
  match Snapshot.of_json (ok (Ppj_obs.Json.of_string snapshot)) with
  | Error e -> Alcotest.failf "snapshot undecodable: %s" e
  | Ok snap -> (
      match Snapshot.find snap "net.server.stats.scrapes" with
      | Some { Snapshot.value = Snapshot.Counter 1; _ } -> ()
      | _ -> Alcotest.fail "scrape counter missing from the scrape itself")

let test_client_stats_does_not_disturb_session () =
  (* Scrape, attest, scrape, handshake: the admin exchange must leave
     the session lifecycle where it found it. *)
  let server = Server.create ~mac_key ~seed:5 () in
  let c = client server in
  let info0, _ = ok (Client.stats c) in
  Alcotest.(check bool) "pre-attest scrape ready" true info0.Wire.ready;
  ok (Client.attest c);
  let info1, snap1 = ok (Client.stats c) in
  Alcotest.(check bool) "post-attest scrape ready" true info1.Wire.ready;
  (match Snapshot.find snap1 "net.server.stats.scrapes" with
  | Some { Snapshot.value = Snapshot.Counter n; _ } when n >= 2 -> ()
  | _ -> Alcotest.fail "scrapes not counted");
  ok (Client.handshake c ~rng:(Rng.create 7) ~id:"carol" ~mac_key);
  Client.close c

let test_scrape_reports_health_gauges () =
  let server = Server.create ~mac_key ~seed:5 () in
  let a, b = workload () in
  List.iter
    (fun (id, rel) ->
      let c = client server in
      ok (Client.submit_relation c ~rng:(Rng.create (Hashtbl.hash id)) ~id ~mac_key ~contract ~schema rel);
      Client.close c)
    [ ("alice", a); ("bob", b) ];
  let c = client server in
  ignore
    (ok
       (Client.fetch_result c ~rng:(Rng.create 99) ~id:"carol" ~mac_key ~contract
          { Service.m = 4; seed = 9; algorithm = Service.Alg5 }));
  let info, snap = ok (Client.stats c) in
  Client.close c;
  Alcotest.(check int) "one session still open" 1 info.Wire.sessions_active;
  Alcotest.(check int) "two sessions closed" 2 info.Wire.sessions_closed;
  (match Snapshot.find snap "net.server.joins.executed" with
  | Some { Snapshot.value = Snapshot.Counter 1; _ } -> ()
  | _ -> Alcotest.fail "join counter missing");
  (match Snapshot.find snap "net.server.join.seconds" with
  | Some { Snapshot.value = Snapshot.Summary s; _ } ->
      Alcotest.(check int) "one join observed" 1 s.Histogram.count;
      Alcotest.(check bool) "samples exported for merging" true
        (Array.length s.Histogram.samples = 1)
  | _ -> Alcotest.fail "join latency summary missing");
  (match Snapshot.find snap "server.uptime_seconds" with
  | Some { Snapshot.value = Snapshot.Gauge u; _ } -> Alcotest.(check bool) "uptime" true (u >= 0.)
  | _ -> Alcotest.fail "uptime gauge missing");
  match
    Snapshot.find snap "build.info"
      ~labels:[ ("ocaml", Sys.ocaml_version); ("version", Ppj_obs.Buildinfo.semver) ]
  with
  | Some { Snapshot.value = Snapshot.Gauge 1.; _ } -> ()
  | _ -> Alcotest.fail "build.info gauge missing"

(* --- federation -------------------------------------------------------- *)

let p = 4

let fleet () =
  let servers = Array.init p (fun k -> Server.create ~mac_key ~seed:(5 + k) ()) in
  let shards = Shards.create ~p ~connect:(fun k -> Ok (Transport.loopback servers.(k))) in
  (servers, shards)

let sharded_config inner = { Coordinator.p; m = 4; seed = 7; inner; strategy = Partitioner.Replicate }

let run_fleet_join shards inner =
  let a, b = workload () in
  ok
    (Coordinator.run_wire ~client_config:no_sleep ~shards ~seed:23 ~mac_key ~contract
       ~providers:[ ("alice", schema, a); ("bob", schema, b) ]
       (sharded_config inner))

let test_federated_scrape () =
  let _servers, shards = fleet () in
  ignore (run_fleet_join shards (Service.Alg8 { attr_a = "key"; attr_b = "key" }));
  let f = ok (Coordinator.stats ~client_config:no_sleep ~shards ()) in
  Alcotest.(check int) "one info per shard" p (List.length f.Coordinator.shard_infos);
  List.iteri
    (fun k (k', info) ->
      Alcotest.(check int) "shard order" k k';
      Alcotest.(check bool) "shard ready" true info.Wire.ready)
    f.Coordinator.shard_infos;
  let snap = f.Coordinator.fleet_snapshot in
  (* per-shard series carry the shard label *)
  for k = 0 to p - 1 do
    match Snapshot.find snap ~labels:[ ("shard", string_of_int k) ] "net.server.joins.executed" with
    | Some { Snapshot.value = Snapshot.Counter 1; _ } -> ()
    | _ -> Alcotest.failf "shard %d join counter missing" k
  done;
  (* the unlabelled rollup sums counters and merges reservoirs: the
     fleet-wide p99 is computable from this one scrape *)
  (match Snapshot.find snap "net.server.joins.executed" with
  | Some { Snapshot.value = Snapshot.Counter n; _ } -> Alcotest.(check int) "fleet joins" p n
  | _ -> Alcotest.fail "fleet join counter missing");
  match Snapshot.find snap "net.server.join.seconds" with
  | Some { Snapshot.value = Snapshot.Summary s; _ } ->
      Alcotest.(check int) "fleet latency count" p s.Histogram.count;
      Alcotest.(check bool) "fleet p99 is the slowest shard" true
        (s.Histogram.p99 >= s.Histogram.p50);
      Alcotest.(check bool) "fleet p99 within range" true
        (s.Histogram.p99 >= s.Histogram.min && s.Histogram.p99 <= s.Histogram.max)
  | _ -> Alcotest.fail "fleet latency summary missing"

let test_federated_pad_slots_per_shard () =
  (* The satellite this PR exists for: the oblivious sort's pad gauge
     must surface one series per shard, not a last-writer-wins global.
     Algorithm 8 sorts on every shard, so every shard writes its own
     [oblivious.sort.pad_slots{...,shard=k}]. *)
  let _servers, shards = fleet () in
  ignore (run_fleet_join shards (Service.Alg8 { attr_a = "key"; attr_b = "key" }));
  let f = ok (Coordinator.stats ~client_config:no_sleep ~shards ()) in
  let pads_of k =
    List.filter
      (fun m ->
        m.Snapshot.name = "oblivious.sort.pad_slots"
        && List.mem ("shard", string_of_int k) m.Snapshot.labels)
      f.Coordinator.fleet_snapshot
  in
  for k = 0 to p - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "shard %d pad series present" k)
      true
      (pads_of k <> [])
  done

let test_federation_fails_closed () =
  (* A shard that cannot be scraped fails the whole federated call with
     the typed shard-unavailable prefix, like any other fan-out. *)
  let servers, _ = fleet () in
  let shards =
    Shards.create ~p ~connect:(fun k ->
        if k = 2 then Error "connect refused" else Ok (Transport.loopback servers.(k)))
  in
  match Coordinator.stats ~client_config:no_sleep ~shards () with
  | Ok _ -> Alcotest.fail "scrape of a dead shard must fail"
  | Error e ->
      Alcotest.(check bool) "typed prefix" true
        (String.length e >= 17 && String.sub e 0 17 = "shard-unavailable")

(* --- the privacy lint on exports --------------------------------------- *)

(* Two data variants of identical shape (|A|, |B|, S, multiplicity), the
   coprocessor seed held fixed — the same quantification as Definition 1,
   applied to the metric export instead of the access trace. *)
let export_of ~data_seed run =
  let rng = Rng.create data_seed in
  let a, b = W.equijoin_pair rng ~na:8 ~nb:12 ~matches:9 ~max_multiplicity:3 in
  let inst = Instance.create ~m:4 ~seed:1234 ~predicate:(P.equijoin2 "key" "key") [ a; b ] in
  (run inst : Report.t).Report.metrics

let check_exports_safe name run () =
  let exports = List.map (fun s -> export_of ~data_seed:s run) [ 1; 2; 3; 4 ] in
  match Privacy.compare_exports exports with
  | Privacy.Indistinguishable -> ()
  | v -> Alcotest.failf "%s export leaks: %a" name Privacy.pp_verdict v

let test_alg1_export = check_exports_safe "alg1" (fun i -> Core.Algorithm1.run i ~n:3)
let test_alg2_export = check_exports_safe "alg2" (fun i -> Core.Algorithm2.run i ~n:3 ())
let test_alg4_export = check_exports_safe "alg4" (fun i -> Core.Algorithm4.run i ())
let test_alg5_export = check_exports_safe "alg5" Core.Algorithm5.run

let test_alg6_export =
  check_exports_safe "alg6" (fun i -> fst (Core.Algorithm6.run i ~eps:1e-12 ()))

let test_alg8_export =
  check_exports_safe "alg8" (fun i -> fst (Core.Algorithm8.run i ~attr_a:"key" ~attr_b:"key"))

let test_leaky_export_is_caught () =
  (* Negative control: an exporter that lets a data-dependent figure
     into the scrape — here a gauge counting the real (pre-pad) matches
     of each run — must be flagged.  If this test ever passes with
     Indistinguishable, the lint has gone blind. *)
  let leaky data_seed =
    let rng = Rng.create data_seed in
    (* different multiplicity distributions, same cardinalities *)
    let a = W.uniform rng ~name:"A" ~n:8 ~key_domain:(2 + data_seed) in
    let b = W.uniform rng ~name:"B" ~n:12 ~key_domain:(2 + data_seed) in
    let inst = Instance.create ~m:4 ~seed:1234 ~predicate:(P.equijoin2 "key" "key") [ a; b ] in
    let report = Core.Algorithm5.run inst in
    let reg = Registry.create () in
    Registry.set_gauge reg "leaky.matches" (float_of_int (List.length report.Report.results));
    Snapshot.union report.Report.metrics (Registry.snapshot reg)
  in
  match Privacy.compare_exports [ leaky 1; leaky 2; leaky 3 ] with
  | Privacy.Indistinguishable -> Alcotest.fail "leaky export not flagged"
  | Privacy.Distinguishable _ -> ()

let test_shape_mismatch_is_structural () =
  (* A metric present in one export and missing from another is itself a
     signal — the lint reports it even when every shared value agrees. *)
  let base =
    let reg = Registry.create () in
    Ppj_obs.Counter.incr (Registry.counter reg "joins");
    Registry.snapshot reg
  in
  let extra =
    let reg = Registry.create () in
    Ppj_obs.Counter.incr (Registry.counter reg "joins");
    Registry.set_gauge reg "surprise" 1.;
    Registry.snapshot reg
  in
  match Privacy.compare_exports [ base; extra ] with
  | Privacy.Distinguishable { detail; _ } ->
      Alcotest.(check bool) "names the metric" true
        (String.length detail > 0)
  | Privacy.Indistinguishable -> Alcotest.fail "structural difference not flagged"

let test_timing_values_are_exempt () =
  (* Same shape, different wall-clock: the default predicate must not
     flag metrics whose name marks them as timing. *)
  let mk secs =
    let reg = Registry.create () in
    Histogram.observe (Registry.histogram reg "join.seconds") secs;
    Registry.set_gauge reg "server.uptime_seconds" (10. *. secs);
    Ppj_obs.Counter.incr (Registry.counter reg "joins");
    Registry.snapshot reg
  in
  (match Privacy.compare_exports [ mk 0.5; mk 0.9 ] with
  | Privacy.Indistinguishable -> ()
  | v -> Alcotest.failf "timing flagged: %a" Privacy.pp_verdict v);
  (* ... but their observation counts are still shape-derived *)
  let two =
    let reg = Registry.create () in
    Histogram.observe (Registry.histogram reg "join.seconds") 0.5;
    Histogram.observe (Registry.histogram reg "join.seconds") 0.6;
    Ppj_obs.Counter.incr (Registry.counter reg "joins");
    Registry.snapshot reg
  in
  match Privacy.compare_exports [ mk 0.5; two ] with
  | Privacy.Distinguishable _ -> ()
  | Privacy.Indistinguishable -> Alcotest.fail "count divergence not flagged"

let test_server_scrapes_pass_the_lint () =
  (* The deployment-shaped check: two servers fed same-shape different
     data must export scrapes the lint accepts.  Server registries only
     — the process-global default registry accumulates across the two
     runs sharing this test binary. *)
  let scrape_of data_seed =
    let server = Server.create ~mac_key ~seed:5 () in
    let a, b = workload ~seed:data_seed () in
    List.iter
      (fun (id, rel) ->
        let c = client server in
        ok
          (Client.submit_relation c
             ~rng:(Rng.create (Hashtbl.hash id))
             ~id ~mac_key ~contract ~schema rel);
        Client.close c)
      [ ("alice", a); ("bob", b) ];
    let c = client server in
    ignore
      (ok
         (Client.fetch_result c ~rng:(Rng.create 99) ~id:"carol" ~mac_key ~contract
            { Service.m = 4; seed = 9; algorithm = Service.Alg5 }));
    Client.close c;
    Registry.snapshot (Server.registry server)
  in
  match Privacy.compare_exports [ scrape_of 11; scrape_of 12; scrape_of 13 ] with
  | Privacy.Indistinguishable -> ()
  | v -> Alcotest.failf "server scrape leaks: %a" Privacy.pp_verdict v

let () =
  Alcotest.run "stats"
    [ ( "wire",
        [ Alcotest.test_case "stats round trip" `Quick test_wire_stats_round_trip;
          Alcotest.test_case "version bumped" `Quick test_wire_version_is_4
        ] );
      ( "scrape",
        [ Alcotest.test_case "before attestation" `Quick test_stats_before_attestation;
          Alcotest.test_case "any phase" `Quick test_client_stats_does_not_disturb_session;
          Alcotest.test_case "health gauges" `Quick test_scrape_reports_health_gauges
        ] );
      ( "federation",
        [ Alcotest.test_case "merged fleet scrape" `Quick test_federated_scrape;
          Alcotest.test_case "pad slots per shard" `Quick test_federated_pad_slots_per_shard;
          Alcotest.test_case "fails closed" `Quick test_federation_fails_closed
        ] );
      ( "export-privacy",
        [ Alcotest.test_case "alg1" `Quick test_alg1_export;
          Alcotest.test_case "alg2" `Quick test_alg2_export;
          Alcotest.test_case "alg4" `Quick test_alg4_export;
          Alcotest.test_case "alg5" `Quick test_alg5_export;
          Alcotest.test_case "alg6" `Quick test_alg6_export;
          Alcotest.test_case "alg8" `Quick test_alg8_export;
          Alcotest.test_case "leaky negative control" `Quick test_leaky_export_is_caught;
          Alcotest.test_case "structural mismatch" `Quick test_shape_mismatch_is_structural;
          Alcotest.test_case "timing exempt, counts not" `Quick test_timing_values_are_exempt;
          Alcotest.test_case "server scrapes" `Quick test_server_scrapes_pass_the_lint
        ] )
    ]
