(* Drive the built ppj_cli binary as a subprocess: exit codes must be
   meaningful (0 on success, non-zero on bad input or verification
   failure), --version must print, and the help of every networked
   subcommand must render. *)

let exe = "../bin/ppj_cli.exe"

let run args = Sys.command (Filename.quote_command exe args ^ " > /dev/null 2>&1")

let check_exit name expected args =
  Alcotest.(check int) name expected (run args)

let test_version () = check_exit "--version exits 0" 0 [ "--version" ]

let test_help_renders () =
  List.iter
    (fun sub -> check_exit (sub ^ " --help") 0 [ sub; "--help" ])
    [ "run"; "parallel"; "serve"; "submit"; "fetch"; "gen"; "csv-join"; "chaos" ]

let test_run_ok () =
  check_exit "run alg4" 0
    [ "run"; "--algorithm"; "alg4"; "--na"; "8"; "--nb"; "8"; "--matches"; "6" ]

let test_run_with_metrics () =
  check_exit "run --metrics" 0
    [ "run"; "--algorithm"; "alg5"; "--na"; "8"; "--nb"; "8"; "--matches"; "6"; "--metrics" ]

let test_run_fault_plan_crash_resumes () =
  (* An injected crash with checkpointing must still exit 0 (the join
     resumes and matches the oracle, or the run would exit 1). *)
  check_exit "run --fault-plan crash" 0
    [ "run"; "--algorithm"; "alg5"; "--na"; "8"; "--nb"; "8"; "--matches"; "6";
      "--fault-plan"; "crash@t=80;checkpoint@every=16"; "--metrics" ]

let test_run_fault_plan_corrupt_detected () =
  (* Injected ciphertext corruption must abort with a nonzero exit, never
     print a wrong answer. *)
  Alcotest.(check bool) "tamper aborts nonzero" true
    (run
       [ "run"; "--algorithm"; "alg5"; "--na"; "8"; "--nb"; "8"; "--matches"; "6";
         "--fault-plan"; "corrupt@t=40" ]
    <> 0)

let test_run_bad_fault_plan_fails () =
  Alcotest.(check bool) "garbage plan is non-zero" true
    (run [ "run"; "--fault-plan"; "explode@t=3" ] <> 0)

let test_chaos_ok () =
  check_exit "chaos --runs 6" 0 [ "chaos"; "--runs"; "6" ]

let test_parallel_ok () =
  check_exit "parallel p=2" 0 [ "parallel"; "-p"; "2"; "--na"; "8"; "--nb"; "8"; "--matches"; "6" ]

let test_privacy_ok () =
  check_exit "privacy alg4" 0
    [ "privacy"; "--algorithm"; "alg4"; "--na"; "6"; "--nb"; "6"; "--matches"; "4" ]

let test_bogus_algorithm_fails () =
  Alcotest.(check bool) "unknown algorithm is non-zero" true (run [ "run"; "--algorithm"; "alg9" ] <> 0)

let test_bogus_subcommand_fails () =
  Alcotest.(check bool) "unknown subcommand is non-zero" true (run [ "frobnicate" ] <> 0)

let test_submit_without_server_fails () =
  (* No listener on the socket: the client must fail with a non-zero
     exit rather than hang (one quick connect attempt, no server). *)
  let csv = Filename.temp_file "ppj-cli" ".csv" in
  let oc = open_out csv in
  output_string oc "key,val\n1,2\n";
  close_out oc;
  let sock = Filename.temp_file "ppj-cli" ".sock" in
  Sys.remove sock;
  let code = run [ "submit"; csv; "--socket"; sock; "--id"; "alice"; "--wait"; "0" ] in
  Sys.remove csv;
  Alcotest.(check bool) "submit with no server is non-zero" true (code <> 0)

let test_fetch_missing_socket_arg_fails () =
  Alcotest.(check bool) "fetch without --socket is non-zero" true
    (run [ "fetch"; "--id"; "carol" ] <> 0)

let () =
  if not (Sys.file_exists exe) then (
    print_endline "ppj_cli.exe not built; skipping CLI tests";
    exit 0);
  Alcotest.run "cli"
    [ ( "exit-codes",
        [ Alcotest.test_case "--version" `Quick test_version;
          Alcotest.test_case "--help across subcommands" `Quick test_help_renders;
          Alcotest.test_case "run succeeds" `Quick test_run_ok;
          Alcotest.test_case "run --metrics succeeds" `Quick test_run_with_metrics;
          Alcotest.test_case "run --fault-plan crash resumes" `Quick
            test_run_fault_plan_crash_resumes;
          Alcotest.test_case "run --fault-plan corrupt aborts" `Quick
            test_run_fault_plan_corrupt_detected;
          Alcotest.test_case "bad fault plan fails" `Quick test_run_bad_fault_plan_fails;
          Alcotest.test_case "chaos succeeds" `Quick test_chaos_ok;
          Alcotest.test_case "parallel succeeds" `Quick test_parallel_ok;
          Alcotest.test_case "privacy succeeds" `Quick test_privacy_ok;
          Alcotest.test_case "bogus algorithm fails" `Quick test_bogus_algorithm_fails;
          Alcotest.test_case "bogus subcommand fails" `Quick test_bogus_subcommand_fails;
          Alcotest.test_case "submit with no server fails" `Quick test_submit_without_server_fails;
          Alcotest.test_case "fetch without socket fails" `Quick test_fetch_missing_socket_arg_fails;
        ] );
    ]
