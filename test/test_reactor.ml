(* The reactor server core: the poller readiness layer (EINTR must not
   shorten a wait), admission control / queue-overflow shedding / idle
   and slowloris eviction with typed unavailable refusals, the seeded
   deterministic scheduler whose interleavings must match the serial
   oracle and reproduce byte-identical flight-recorder timelines, the
   chaos soak over the reactor path, and the open-loop load generator
   against a real Unix-domain socket. *)

open Ppj_net
module Ch = Ppj_scpu.Channel
module W = Ppj_relation.Workload
module P = Ppj_relation.Predicate
module T = Ppj_relation.Tuple
module Rng = Ppj_crypto.Rng
module Service = Ppj_core.Service
module Registry = Ppj_obs.Registry
module Counter = Ppj_obs.Counter
module Recorder = Ppj_obs.Recorder

let mac_key = "test-reactor-mac-key"
let schema = W.keyed_schema ()

let contract =
  { Ch.contract_id = "contract-reactor-001";
    providers = [ "alice"; "bob" ];
    recipient = "carol";
    predicate = "eq(key,key)";
  }

let workload () =
  let rng = Rng.create 7 in
  W.equijoin_pair rng ~na:8 ~nb:12 ~matches:9 ~max_multiplicity:3

let config = { Service.m = 4; seed = 7; algorithm = Service.Alg5 }

let oracle () =
  let pa = Ch.party ~id:"alice" ~secret:(String.make 16 'a') in
  let pb = Ch.party ~id:"bob" ~secret:(String.make 16 'b') in
  let pc = Ch.party ~id:"carol" ~secret:(String.make 16 'c') in
  let a, b = workload () in
  match
    Service.run config ~contract
      ~submissions:
        [ (pa, schema, Ch.submit pa contract a); (pb, schema, Ch.submit pb contract b) ]
      ~recipient:pc ~predicate:(P.equijoin2 "key" "key")
  with
  | Ok o -> List.sort compare (List.map T.encode o.Service.delivered)
  | Error e -> Alcotest.fail ("oracle failed: " ^ e)

let counter_value server name = Counter.value (Registry.counter (Server.registry server) name)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1)) in
  n = 0 || go 0

(* --- poller ---------------------------------------------------------- *)

let test_poller_readiness backend () =
  let poller = Poller.create ~backend () in
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      Unix.close r;
      Unix.close w)
    (fun () ->
      (* nothing to read yet: the wait times out empty *)
      let readable, writable = Poller.wait poller ~read:[ r ] ~write:[] ~timeout:0.01 in
      Alcotest.(check bool) "quiet pipe not readable" true (readable = [] && writable = []);
      (* the write end of a fresh pipe is writable *)
      let _, writable = Poller.wait poller ~read:[] ~write:[ w ] ~timeout:0.5 in
      Alcotest.(check bool) "pipe writable" true (List.mem w writable);
      ignore (Unix.write_substring w "x" 0 1);
      let readable, _ = Poller.wait poller ~read:[ r ] ~write:[] ~timeout:0.5 in
      Alcotest.(check bool) "pipe readable after write" true (List.mem r readable))

let test_poller_survives_eintr backend () =
  (* A signal storm during the wait: the old select loop surfaced EINTR
     as an instant empty result (and the client's recv as a spurious
     timeout).  The poller must absorb the interrupts and still honour
     the caller's full deadline. *)
  let poller = Poller.create ~backend () in
  let r, w = Unix.pipe () in
  let fired = ref 0 in
  let prev = Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> incr fired)) in
  let prev_timer =
    Unix.setitimer Unix.ITIMER_REAL { Unix.it_value = 0.02; it_interval = 0.02 }
  in
  Fun.protect
    ~finally:(fun () ->
      ignore (Unix.setitimer Unix.ITIMER_REAL prev_timer);
      Sys.set_signal Sys.sigalrm prev;
      Unix.close r;
      Unix.close w)
    (fun () ->
      let t0 = Unix.gettimeofday () in
      let readable, writable = Poller.wait poller ~read:[ r ] ~write:[] ~timeout:0.2 in
      let elapsed = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool) "interrupts fired during the wait" true (!fired > 0);
      Alcotest.(check bool) "result still empty" true (readable = [] && writable = []);
      Alcotest.(check bool)
        (Printf.sprintf "waited the full deadline (%.3fs elapsed)" elapsed)
        true (elapsed >= 0.15))

(* --- reactor engine -------------------------------------------------- *)

let make_server ?recorder ?registry () =
  Server.create ?recorder ?registry ~mac_key ~seed:5 ()

let attest_frame ~seq =
  Frame.encode (Wire.to_frame ~seq (Wire.Attest_request { version = Wire.version; ctx = None }))

(* Pump one flow against one reactor connection to completion: all
   pending bytes cross in both directions each step.  Deterministic and
   sleep-free; a protocol hang shows up as [None] after [max_steps]. *)
let drive ?(max_steps = 10_000) reactor conn flow =
  let steps = ref 0 in
  while Flow.outcome flow = None && !steps < max_steps do
    incr steps;
    (match Flow.pending flow with
    | Some (b, off) ->
        let n = String.length b - off in
        Reactor.feed reactor conn ~now:0. (String.sub b off n);
        Flow.sent flow n
    | None -> ());
    (match Reactor.pending conn with
    | Some (s, off) ->
        let n = String.length s - off in
        Reactor.wrote conn n;
        Flow.on_bytes flow (String.sub s off n)
    | None -> ());
    if Reactor.finished conn then begin
      Reactor.close reactor conn;
      Flow.on_eof flow
    end
  done;
  Flow.outcome flow

let flow ~seed id goal = Flow.create ~rng:(Rng.create seed) ~id ~mac_key ~contract goal

let run_session reactor f =
  let conn = Reactor.connect reactor ~now:0. ~peer:(Flow.id f) in
  let outcome = drive reactor conn f in
  Reactor.close reactor conn;
  outcome

let test_reactor_full_join () =
  let server = make_server () in
  let reactor = Reactor.create server in
  let a, b = workload () in
  (match run_session reactor (flow ~seed:11 "alice" (Flow.Submit { schema; relation = a })) with
  | Some Flow.Submitted -> ()
  | o -> Alcotest.failf "alice: %s" (match o with Some (Flow.Refused e) -> e | _ -> "no outcome"));
  (match run_session reactor (flow ~seed:12 "bob" (Flow.Submit { schema; relation = b })) with
  | Some Flow.Submitted -> ()
  | _ -> Alcotest.fail "bob upload failed");
  match run_session reactor (flow ~seed:13 "carol" (Flow.Join { config })) with
  | Some (Flow.Delivered tuples) ->
      Alcotest.(check (list string))
        "reactor path delivers the oracle's tuples" (oracle ()) (List.sort compare tuples)
  | Some (Flow.Refused e) -> Alcotest.fail e
  | _ -> Alcotest.fail "carol got no delivery"

let test_admission_shed () =
  let server = make_server () in
  let limits = { Reactor.default_limits with max_conns = 2 } in
  let reactor = Reactor.create ~limits server in
  let c1 = Reactor.connect reactor ~now:0. ~peer:"one" in
  let _c2 = Reactor.connect reactor ~now:0. ~peer:"two" in
  Alcotest.(check int) "two admitted" 2 (Reactor.live reactor);
  (* the third is refused: its first frame is answered with a typed
     unavailable echoing that frame's seq, then the connection closes *)
  let refused = flow ~seed:21 "carol" (Flow.Join { config }) in
  (match run_session reactor refused with
  | Some (Flow.Refused e) ->
      Alcotest.(check bool) ("typed unavailable: " ^ e) true (contains ~sub:"unavailable" e)
  | _ -> Alcotest.fail "over-capacity connection was not refused");
  Alcotest.(check int) "shed counted" 1 (counter_value server "net.server.admission.shed");
  Alcotest.(check int) "live count undisturbed" 2 (Reactor.live reactor);
  (* capacity freed: a new connection is admitted and works *)
  Reactor.close reactor c1;
  match run_session reactor (flow ~seed:22 "carol" (Flow.Join { config })) with
  | Some (Flow.Refused e) ->
      (* no submissions yet: execute retries exhaust on missing-submission,
         but the connection itself was admitted and answered *)
      Alcotest.(check bool) "admitted and answered" true (contains ~sub:"missing" e)
  | _ -> ()

let test_overload_shed_typed_unavailable () =
  let server = make_server () in
  (* a cap two attestation-chain replies overflow *)
  let chain_reply =
    let probe = Reactor.create (make_server ()) in
    let c = Reactor.connect probe ~now:0. ~peer:"probe" in
    Reactor.feed probe c ~now:0. (attest_frame ~seq:1);
    match Reactor.pending c with
    | Some (s, _) -> String.length s
    | None -> Alcotest.fail "no attest reply"
  in
  let limits = { Reactor.default_limits with max_queue_bytes = (2 * chain_reply) - 1 } in
  let reactor = Reactor.create ~limits server in
  let conn = Reactor.connect reactor ~now:0. ~peer:"slow-reader" in
  (* a client that requests without ever reading replies *)
  for seq = 1 to 4 do
    Reactor.feed reactor conn ~now:0. (attest_frame ~seq)
  done;
  Alcotest.(check int) "overload shed counted" 1
    (counter_value server "net.server.overload.shed");
  (* drain what the reactor kept: it must end in a typed unavailable,
     and the connection must be finished, never hung *)
  let out = Buffer.create 256 in
  let rec pump () =
    match Reactor.pending conn with
    | None -> ()
    | Some (s, off) ->
        Buffer.add_string out (String.sub s off (String.length s - off));
        Reactor.wrote conn (String.length s - off);
        pump ()
  in
  pump ();
  Alcotest.(check bool) "connection closes after the goodbye" true (Reactor.finished conn);
  let dec = Frame.Decoder.create () in
  Frame.Decoder.feed dec (Buffer.contents out);
  let last = ref None in
  let rec collect () =
    match Frame.Decoder.next dec with
    | Ok (Some f) ->
        last := Some f;
        collect ()
    | Ok None -> ()
    | Error e -> Alcotest.fail ("shed stream must stay frame-aligned: " ^ e)
  in
  collect ();
  match !last with
  | Some f -> (
      match Wire.of_frame f with
      | Ok (Wire.Error { code = Wire.Unavailable; message }) ->
          Alcotest.(check bool) "names the overload" true (contains ~sub:"overload" message)
      | _ -> Alcotest.fail "last frame is not a typed unavailable")
  | None -> Alcotest.fail "nothing queued at all"

let test_idle_eviction () =
  let server = make_server () in
  let limits = { Reactor.default_limits with idle_timeout = 5. } in
  let reactor = Reactor.create ~limits server in
  let conn = Reactor.connect reactor ~now:0. ~peer:"silent" in
  Reactor.feed reactor conn ~now:1. (attest_frame ~seq:1);
  (* still within the window *)
  Alcotest.(check int) "no hard expiry yet" 0 (List.length (Reactor.sweep reactor ~now:5.));
  Alcotest.(check int) "not evicted inside the window" 0
    (counter_value server "net.server.evicted.idle");
  (* silence past the timeout: marked closing with a goodbye queued *)
  ignore (Reactor.sweep reactor ~now:6.5);
  Alcotest.(check int) "evicted" 1 (counter_value server "net.server.evicted.idle");
  Alcotest.(check bool) "reads stop" false (Reactor.wants_read conn);
  (* the peer never drains: a further timeout hard-expires it *)
  let expired = Reactor.sweep reactor ~now:12.5 in
  Alcotest.(check int) "hard-expired for teardown" 1 (List.length expired);
  Alcotest.(check int) "session not yet released" 0 (Server.sessions_closed server);
  List.iter (fun c -> Reactor.close reactor c) expired;
  Alcotest.(check int) "session state released" 1 (Server.sessions_closed server)

let test_slowloris_evicted_healthy_survives () =
  let server = make_server () in
  let limits = { Reactor.default_limits with idle_timeout = 5. } in
  let reactor = Reactor.create ~limits server in
  (* the slowloris: one byte of a valid frame per virtual second — bytes
     keep arriving but no frame ever completes, so the idle clock (which
     only advances on decoded frames) runs out anyway *)
  let loris = Reactor.connect reactor ~now:0. ~peer:"slowloris" in
  let frame = attest_frame ~seq:1 in
  for i = 0 to 6 do
    Reactor.feed reactor loris ~now:(float_of_int i) (String.sub frame i 1)
  done;
  ignore (Reactor.sweep reactor ~now:6.5);
  Alcotest.(check int) "slowloris evicted despite trickling bytes" 1
    (counter_value server "net.server.evicted.idle");
  Alcotest.(check bool) "marked closing" false (Reactor.wants_read loris);
  (* a healthy session on the same reactor is undisturbed *)
  let healthy = Reactor.connect reactor ~now:6.5 ~peer:"healthy" in
  Reactor.feed reactor healthy ~now:6.6 (attest_frame ~seq:1);
  (match Reactor.pending healthy with
  | Some _ -> ()
  | None -> Alcotest.fail "healthy session got no reply");
  Alcotest.(check bool) "healthy still read" true (Reactor.wants_read healthy)

let test_malformed_flood_isolated () =
  let server = make_server () in
  let reactor = Reactor.create server in
  (* a flood of undecodable garbage on several connections *)
  let garbage = String.concat "" [ "\xff\xff\xff\xff"; String.make 64 '\xee' ] in
  let floods =
    List.init 3 (fun i ->
        let c = Reactor.connect reactor ~now:0. ~peer:(Printf.sprintf "flood-%d" i) in
        Reactor.feed reactor c ~now:0. garbage;
        (* closing: later garbage is discarded, not decoded *)
        Reactor.feed reactor c ~now:0. garbage;
        c)
  in
  Alcotest.(check int) "each flood counted once" 3
    (counter_value server "net.server.evicted.malformed");
  List.iter
    (fun c ->
      let typed = ref false in
      let rec pump () =
        match Reactor.pending c with
        | None -> ()
        | Some (s, off) ->
            let dec = Frame.Decoder.create () in
            Frame.Decoder.feed dec (String.sub s off (String.length s - off));
            Reactor.wrote c (String.length s - off);
            (match Frame.Decoder.next dec with
            | Ok (Some f) -> (
                match Wire.of_frame f with
                | Ok (Wire.Error { code = Wire.Malformed; _ }) -> typed := true
                | _ -> ())
            | _ -> ());
            pump ()
      in
      pump ();
      Alcotest.(check bool) "typed malformed goodbye" true !typed;
      Alcotest.(check bool) "flood connection finished" true (Reactor.finished c);
      Reactor.close reactor c)
    floods;
  (* healthy sessions on the same reactor complete a full join *)
  let a, b = workload () in
  ignore (run_session reactor (flow ~seed:31 "alice" (Flow.Submit { schema; relation = a })));
  ignore (run_session reactor (flow ~seed:32 "bob" (Flow.Submit { schema; relation = b })));
  match run_session reactor (flow ~seed:33 "carol" (Flow.Join { config })) with
  | Some (Flow.Delivered tuples) ->
      Alcotest.(check (list string))
        "join unharmed by the flood" (oracle ()) (List.sort compare tuples)
  | _ -> Alcotest.fail "healthy join disturbed by malformed flood"

let test_backpressure_stops_reads () =
  let server = make_server () in
  let limits = { Reactor.default_limits with high_water_bytes = 64 } in
  let reactor = Reactor.create ~limits server in
  let conn = Reactor.connect reactor ~now:0. ~peer:"slow" in
  Alcotest.(check bool) "reads wanted while drained" true (Reactor.wants_read conn);
  Reactor.feed reactor conn ~now:0. (attest_frame ~seq:1);
  (* the queued chain reply exceeds the high-water mark *)
  Alcotest.(check bool) "reads paused above high water" false (Reactor.wants_read conn);
  let rec pump () =
    match Reactor.pending conn with
    | None -> ()
    | Some (s, off) ->
        Reactor.wrote conn (String.length s - off);
        pump ()
  in
  pump ();
  Alcotest.(check bool) "reads resume once drained" true (Reactor.wants_read conn)

(* --- deterministic simulated transport ------------------------------- *)

let sim_flows () =
  let a, b = workload () in
  flow ~seed:101 "alice" (Flow.Submit { schema; relation = a })
  :: flow ~seed:102 "bob" (Flow.Submit { schema; relation = b })
  :: List.init 7 (fun i -> flow ~seed:(200 + i) "carol" (Flow.Join { config }))

let check_sim_outcomes seed (r : Sim.result) =
  let expected = oracle () in
  List.iteri
    (fun i o ->
      match (i, o) with
      | _, None -> Alcotest.failf "seed %d: session %d hung (no outcome)" seed i
      | (0 | 1), Some Flow.Submitted -> ()
      | (0 | 1), Some _ -> Alcotest.failf "seed %d: provider %d did not conclude upload" seed i
      | _, Some (Flow.Delivered tuples) ->
          Alcotest.(check (list string))
            (Printf.sprintf "seed %d session %d matches the serial oracle" seed i)
            expected (List.sort compare tuples)
      | _, Some (Flow.Refused e) -> Alcotest.failf "seed %d: session %d refused: %s" seed i e
      | _, Some Flow.Submitted -> Alcotest.failf "seed %d: recipient %d submitted?" seed i)
    r.Sim.outcomes

(* The tentpole property: 20 seeded schedules of 9 concurrent sessions,
   every session's result equal to the serial oracle, and the server's
   flight-recorder timeline byte-identical when the seed is replayed. *)
let test_sim_matches_oracle_across_seeds () =
  let step_counts = ref [] in
  for seed = 1 to 20 do
    let server = make_server () in
    let r = Sim.run ~seed ~server (sim_flows ()) in
    check_sim_outcomes seed r;
    step_counts := r.Sim.steps :: !step_counts
  done;
  (* different seeds genuinely schedule differently *)
  Alcotest.(check bool) "schedules vary across seeds" true
    (List.length (List.sort_uniq compare !step_counts) > 1)

let sim_run_with_timeline seed =
  let recorder = Recorder.create ~name:"server" ~trace_id:"sim-determinism" () in
  let server = make_server ~recorder () in
  let r = Sim.run ~seed ~server (sim_flows ()) in
  (r, Recorder.timeline recorder)

let test_sim_replay_identical () =
  List.iter
    (fun seed ->
      let r1, t1 = sim_run_with_timeline seed in
      let r2, t2 = sim_run_with_timeline seed in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: same step count" seed)
        r1.Sim.steps r2.Sim.steps;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: same outcomes" seed)
        true (r1.Sim.outcomes = r2.Sim.outcomes);
      Alcotest.(check string)
        (Printf.sprintf "seed %d: timeline byte-identical" seed)
        t1 t2)
    [ 1; 7; 13 ]

let test_sim_idle_eviction_virtual_time () =
  (* an aggressively short virtual idle window: sessions get evicted
     mid-protocol whenever the scheduler starves them, and the property
     is that every session still concludes — eviction surfaces as a
     typed refusal or eof, never a hang, all in simulated time *)
  let server = make_server () in
  let limits = { Reactor.default_limits with idle_timeout = 0.05 (* 50 virtual steps *) } in
  let a, b = workload () in
  let flows =
    [ flow ~seed:301 "alice" (Flow.Submit { schema; relation = a });
      flow ~seed:302 "bob" (Flow.Submit { schema; relation = b });
      flow ~seed:303 "carol" (Flow.Join { config });
    ]
  in
  let r = Sim.run ~limits ~seed:5 ~server flows in
  (* everyone still concludes: eviction surfaces as refusal/eof, never a hang *)
  List.iteri
    (fun i o ->
      match o with
      | None -> Alcotest.failf "session %d hung under idle eviction" i
      | Some _ -> ())
    r.Sim.outcomes

(* --- chaos soak over the reactor path -------------------------------- *)

let test_chaos_soak_on_reactor () =
  let runs = Chaos.soak ~reactor:true ~runs:25 () in
  List.iter
    (fun r ->
      if not (Chaos.safe r) then
        Alcotest.failf "seed %d unsafe on the reactor: %s" r.Chaos.seed
          (Chaos.outcome_to_string r.Chaos.outcome))
    runs;
  (* at least some runs exercise real faults, or the soak proves nothing *)
  let injected = List.fold_left (fun n r -> n + r.Chaos.injected) 0 runs in
  Alcotest.(check bool) "faults actually fired" true (injected > 0)

let test_chaos_reactor_reproducible () =
  let one () = Chaos.run_one ~reactor:true ~seed:3 () in
  let a = one () and b = one () in
  Alcotest.(check string) "same outcome" (Chaos.outcome_to_string a.Chaos.outcome)
    (Chaos.outcome_to_string b.Chaos.outcome);
  Alcotest.(check int) "same faults fired" a.Chaos.injected b.Chaos.injected

(* --- real sockets ---------------------------------------------------- *)

let sock_path tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "ppj-reactor-%s-%d.sock" tag (Unix.getpid ()))

let with_server_child ~key ~limits ?max_sessions ~path k =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  match Unix.fork () with
  | 0 ->
      (try
         let server = Server.create ~mac_key:key ~seed:5 () in
         Reactor.serve_unix (Reactor.create ~limits server) ~path ?max_sessions ()
       with _ -> ());
      Unix._exit 0
  | pid ->
      Fun.protect
        ~finally:(fun () ->
          (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        (fun () -> k pid)

let test_loadgen_over_socket () =
  let path = sock_path "loadgen" in
  with_server_child ~key:Loadgen.mac_key ~limits:Reactor.default_limits ~path (fun _pid ->
      let spec =
        { Loadgen.default_spec with
          sessions = 40;
          session_deadline = 30.;
          wall_deadline = 60.;
        }
      in
      match Loadgen.run ~spec ~path () with
      | Error e -> Alcotest.fail e
      | Ok stats ->
          Alcotest.(check int) "all sessions completed" 40 stats.Loadgen.completed;
          Alcotest.(check int) "no wrong answers" 0 stats.Loadgen.wrong;
          Alcotest.(check int) "no hung sessions" 0 stats.Loadgen.hung;
          Alcotest.(check bool) "burst arrivals overlapped" true
            (stats.Loadgen.max_concurrent >= 20);
          Alcotest.(check bool) "latency measured" true (stats.Loadgen.p99 > 0.))

let test_idle_eviction_over_socket () =
  (* A connected-but-silent client must not pin server state: with a
     short idle timeout the server evicts it (typed unavailable, then
     close), a concurrent join completes undisturbed, and the evicted
     session's closure counts toward max_sessions — so the server child
     exiting at all proves the silent client released its state. *)
  let path = sock_path "idle" in
  let limits = { Reactor.default_limits with idle_timeout = 0.3 } in
  with_server_child ~key:mac_key ~limits ~max_sessions:4 ~path (fun pid ->
      let connect () =
        let rec go n =
          match Transport.connect_unix ~path () with
          | Ok t -> t
          | Error e -> if n = 0 then Alcotest.fail e else (Unix.sleepf 0.05; go (n - 1))
        in
        go 100
      in
      (* the silent client: one attest, then nothing, never closed by us *)
      let silent = connect () in
      silent.Transport.send (attest_frame ~seq:1);
      (* a full join on other connections while the silent one idles *)
      let a, b = workload () in
      let submit id rel =
        let c = Client.create (connect ()) in
        (match
           Client.submit_relation c
             ~rng:(Rng.create (Hashtbl.hash id))
             ~id ~mac_key ~contract ~schema rel
         with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        Client.close c
      in
      submit "alice" a;
      submit "bob" b;
      let c = Client.create (connect ()) in
      (match
         Client.fetch_result c ~rng:(Rng.create 99) ~id:"carol" ~mac_key ~contract config
       with
      | Ok (_, tuples) ->
          Alcotest.(check bool) "join delivered" true (tuples <> [])
      | Error e -> Alcotest.fail e);
      Client.close c;
      (* the silent client's wire: attest chain, then the eviction's
         typed unavailable, then EOF *)
      let dec = Frame.Decoder.create () in
      let saw_unavailable = ref false in
      let deadline = Unix.gettimeofday () +. 10. in
      (try
         while (not !saw_unavailable) && Unix.gettimeofday () < deadline do
           (match silent.Transport.recv ~timeout:0.25 with
           | Some bytes -> Frame.Decoder.feed dec bytes
           | None -> ());
           let rec pump () =
             match Frame.Decoder.next dec with
             | Ok (Some f) ->
                 (match Wire.of_frame f with
                 | Ok (Wire.Error { code = Wire.Unavailable; message }) ->
                     Alcotest.(check bool) "names idleness" true (contains ~sub:"idle" message);
                     saw_unavailable := true
                 | _ -> ());
                 pump ()
             | _ -> ()
           in
           pump ()
         done
       with Transport.Closed -> ());
      Alcotest.(check bool) "silent client got the typed eviction" true !saw_unavailable;
      (* the server reaches max_sessions only if the evicted session
         closed: waitpid must conclude without our SIGTERM *)
      let rec reap n =
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ -> if n = 0 then Alcotest.fail "server still pinned by the silent client"
                  else (Unix.sleepf 0.1; reap (n - 1))
        | _ -> ()
      in
      reap 100)

let () =
  Alcotest.run "reactor"
    [ ( "poller",
        [ Alcotest.test_case "poll backend readiness" `Quick (test_poller_readiness Poller.Poll);
          Alcotest.test_case "select backend readiness" `Quick
            (test_poller_readiness Poller.Select);
          Alcotest.test_case "poll absorbs EINTR" `Quick
            (test_poller_survives_eintr Poller.Poll);
          Alcotest.test_case "select absorbs EINTR" `Quick
            (test_poller_survives_eintr Poller.Select);
        ] );
      ( "overload",
        [ Alcotest.test_case "full join through the reactor" `Quick test_reactor_full_join;
          Alcotest.test_case "admission cap sheds typed unavailable" `Quick test_admission_shed;
          Alcotest.test_case "queue overflow sheds typed unavailable" `Quick
            test_overload_shed_typed_unavailable;
          Alcotest.test_case "idle session evicted" `Quick test_idle_eviction;
          Alcotest.test_case "slowloris evicted, healthy survives" `Quick
            test_slowloris_evicted_healthy_survives;
          Alcotest.test_case "malformed flood isolated" `Quick test_malformed_flood_isolated;
          Alcotest.test_case "backpressure pauses reads" `Quick test_backpressure_stops_reads;
        ] );
      ( "sim",
        [ Alcotest.test_case "20 seeds match the serial oracle" `Quick
            test_sim_matches_oracle_across_seeds;
          Alcotest.test_case "replay is byte-identical" `Quick test_sim_replay_identical;
          Alcotest.test_case "idle eviction in virtual time" `Quick
            test_sim_idle_eviction_virtual_time;
        ] );
      ( "chaos-reactor",
        [ Alcotest.test_case "soak stays safe on the reactor" `Quick test_chaos_soak_on_reactor;
          Alcotest.test_case "soak reproducible per seed" `Quick
            test_chaos_reactor_reproducible;
        ] );
      ( "unix",
        [ Alcotest.test_case "loadgen over a real socket" `Quick test_loadgen_over_socket;
          Alcotest.test_case "silent client evicted over a real socket" `Quick
            test_idle_eviction_over_socket;
        ] );
    ]
