(* Oblivious building blocks: bitonic networks, coprocessor-driven sort,
   the buffered decoy filter of §5.2.2, and the oblivious shuffle. *)

module Bitonic = Ppj_oblivious.Bitonic
module Oddeven = Ppj_oblivious.Oddeven
module Sort = Ppj_oblivious.Sort
module Filter = Ppj_oblivious.Filter
module Shuffle = Ppj_oblivious.Shuffle
module Trace = Ppj_scpu.Trace
module Host = Ppj_scpu.Host
module Co = Ppj_scpu.Coprocessor
module Decoy = Ppj_relation.Decoy

let qtest name ?(count = 100) arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

(* --- Bitonic network --- *)

let test_next_pow2 () =
  List.iter
    (fun (n, want) -> Alcotest.(check int) (string_of_int n) want (Bitonic.next_pow2 n))
    [ (0, 1); (1, 1); (2, 2); (3, 4); (4, 4); (5, 8); (1000, 1024) ]

let test_schedule_requires_pow2 () =
  Alcotest.check_raises "n=6" (Invalid_argument "Bitonic.schedule: length must be a power of two")
    (fun () -> ignore (Bitonic.schedule 6))

let test_counts_match_formula () =
  List.iter
    (fun n ->
      let lg = int_of_float (Float.round (log (float_of_int n) /. log 2.)) in
      Alcotest.(check int)
        (Printf.sprintf "comparators n=%d" n)
        (n / 2 * (lg * (lg + 1) / 2))
        (Array.length (Bitonic.schedule n));
      Alcotest.(check int)
        (Printf.sprintf "count fn n=%d" n)
        (Array.length (Bitonic.schedule n))
        (Bitonic.comparator_count n))
    [ 2; 4; 8; 16; 64; 256 ]

let prop_bitonic_sorts =
  qtest "network sorts any array" ~count:300
    QCheck.(pair (int_range 0 6) (list_of_size (QCheck.Gen.return 0) QCheck.unit))
    (fun (logn, _) ->
      let n = 1 lsl logn in
      let st = Random.State.make [| logn; 99 |] in
      let a = Array.init n (fun _ -> Random.State.int st 50) in
      let want = Array.copy a in
      Array.sort compare want;
      Bitonic.sort_in_place compare a;
      a = want)

let prop_bitonic_sorts_adversarial =
  qtest "network sorts duplicates and reverse runs" QCheck.(int_range 0 7) (fun logn ->
      let n = 1 lsl logn in
      let a = Array.init n (fun i -> (n - i) mod 3) in
      let want = Array.copy a in
      Array.sort compare want;
      Bitonic.sort_in_place compare a;
      a = want)

let test_schedule_data_independent () =
  (* The same (n) must always yield the identical comparator list. *)
  Alcotest.(check bool) "identical schedules" true (Bitonic.schedule 64 = Bitonic.schedule 64)

let test_schedule_memoized () =
  (* Regression: schedules used to be rebuilt on every sort call —
     O(n log^2 n) allocation on the hot path.  Warm each size once, then
     assert repeat requests hit the cache. *)
  ignore (Bitonic.schedule 512);
  ignore (Oddeven.schedule 512);
  let bb = Bitonic.schedule_builds () and ob = Oddeven.schedule_builds () in
  for _ = 1 to 5 do
    ignore (Bitonic.schedule 512);
    ignore (Oddeven.schedule 512);
    ignore (Bitonic.comparator_count 512);
    ignore (Oddeven.comparator_count 512)
  done;
  Alcotest.(check int) "bitonic: no rebuild" bb (Bitonic.schedule_builds ());
  Alcotest.(check int) "odd-even: no rebuild" ob (Oddeven.schedule_builds ());
  (* A genuinely new size is still a (single) cache miss. *)
  ignore (Bitonic.schedule 2048);
  ignore (Bitonic.schedule 2048);
  Alcotest.(check int) "one miss for a new size" (bb + 1) (Bitonic.schedule_builds ())

(* --- 0-1 principle (Knuth, TAOCP vol. 3, Thm. Z) ---

   A comparator network sorts every input iff it sorts every 0/1 input.
   Exhausting all 2^n binary vectors for n up to 16 is therefore a
   *complete* correctness proof for those widths — stronger than any
   amount of random testing, and cheap because the networks are data
   independent (65536 vectors x 63 comparators at n = 16). *)

let exhaustive_01 name sort_in_place =
  let check_n n =
    for bits = 0 to (1 lsl n) - 1 do
      let a = Array.init n (fun i -> (bits lsr i) land 1) in
      let ones = Array.fold_left ( + ) 0 a in
      sort_in_place compare a;
      (* A sorted 0/1 vector is (n - ones) zeros then (ones) ones. *)
      Array.iteri
        (fun i v ->
          let want = if i < n - ones then 0 else 1 in
          if v <> want then
            Alcotest.failf "%s n=%d input=%#x: position %d is %d, want %d" name n bits i v
              want)
        a
    done
  in
  fun () -> List.iter check_n [ 2; 4; 8; 16 ]

let test_bitonic_01_principle = exhaustive_01 "bitonic" Bitonic.sort_in_place
let test_oddeven_01_principle = exhaustive_01 "odd-even" Oddeven.sort_in_place

(* Exhaustive enumeration stops at n = 16; push the same 0-1 argument to
   network widths up to 1024 with random vectors, including the padded
   non-power-of-two case the algorithms actually hit: n real 0/1 entries
   followed by next_pow2(n) - n pad slots (value 2, ordered last exactly
   like sort_padded's sentinels). *)
let random_01_padded name sort_in_place =
  qtest (name ^ " 0-1 vectors to n=1024, padded") ~count:60
    QCheck.(pair (int_range 1 1024) (int_range 0 10_000))
    (fun (n, seed) ->
      let p = Bitonic.next_pow2 n in
      let st = Random.State.make [| n; seed |] in
      let a = Array.init p (fun i -> if i < n then Random.State.int st 2 else 2) in
      let ones = Array.fold_left (fun acc v -> if v = 1 then acc + 1 else acc) 0 a in
      sort_in_place compare a;
      let want i = if i < n - ones then 0 else if i < n then 1 else 2 in
      let ok = ref true in
      Array.iteri (fun i v -> if v <> want i then ok := false) a;
      !ok)

let prop_bitonic_01_random = random_01_padded "bitonic" Bitonic.sort_in_place
let prop_oddeven_01_random = random_01_padded "odd-even" Oddeven.sort_in_place

(* --- Odd-even merge network (ablation alternative) --- *)

let prop_oddeven_sorts =
  qtest "odd-even network sorts any array" ~count:300 QCheck.(int_range 0 7) (fun logn ->
      let n = 1 lsl logn in
      let st = Random.State.make [| logn; 55 |] in
      let a = Array.init n (fun _ -> Random.State.int st 50) in
      let want = Array.copy a in
      Array.sort compare want;
      Oddeven.sort_in_place compare a;
      a = want)

let test_oddeven_cheaper_than_bitonic () =
  (* The ablation's point: strictly fewer comparators for every n >= 4. *)
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "n=%d" n)
        true
        (Oddeven.comparator_count n < Bitonic.comparator_count n))
    [ 4; 8; 16; 64; 256; 1024 ]

let test_oddeven_known_counts () =
  (* Classic values: n=4 -> 5 comparators, n=8 -> 19, n=16 -> 63. *)
  List.iter
    (fun (n, want) -> Alcotest.(check int) (string_of_int n) want (Oddeven.comparator_count n))
    [ (2, 1); (4, 5); (8, 19); (16, 63) ]

(* --- Oblivious sort over a host region --- *)

let setup_region values ~pad =
  let host = Host.create () in
  let co = Co.create ~host ~m:8 ~seed:3 () in
  let n = Array.length values in
  let size = if pad then Bitonic.next_pow2 n else n in
  let (_ : Host.t) = Host.define_region host Trace.Scratch ~size in
  Array.iteri (fun i v -> Co.put co Trace.Scratch i v) values;
  (host, co, n)

let read_back co n = Array.init n (fun i -> Co.get co Trace.Scratch i)
let read_back_fwd = read_back

let test_sort_with_oddeven_network () =
  let values = [| "d"; "a"; "c"; "b" |] in
  let _, co, n = setup_region values ~pad:false in
  Sort.sort ~network:Sort.Odd_even co Trace.Scratch ~n ~compare:String.compare;
  Alcotest.(check (array string)) "sorted" [| "a"; "b"; "c"; "d" |] (read_back_fwd co n)

let test_sort_region () =
  let values = [| "d"; "a"; "c"; "b" |] in
  let _, co, n = setup_region values ~pad:false in
  Sort.sort co Trace.Scratch ~n ~compare:String.compare;
  Alcotest.(check (array string)) "sorted" [| "a"; "b"; "c"; "d" |] (read_back co n)

let test_sort_padded_region () =
  let values = [| "eee"; "aaa"; "ddd"; "ccc"; "bbb" |] in
  let _, co, n = setup_region values ~pad:true in
  Sort.sort_padded co Trace.Scratch ~n ~width:3 ~compare:String.compare;
  Alcotest.(check (array string)) "first n sorted"
    [| "aaa"; "bbb"; "ccc"; "ddd"; "eee" |]
    (read_back co n)

let test_sort_padded_gauge () =
  (* sort_padded surfaces its power-of-two overhead: 5 -> 8 slots means
     3 pad writes on the gauge (and at least that on the counter). *)
  let values = [| "eee"; "aaa"; "ddd"; "ccc"; "bbb" |] in
  let _, co, n = setup_region values ~pad:true in
  Sort.sort_padded co Trace.Scratch ~n ~width:3 ~compare:String.compare;
  let snap = Ppj_obs.Registry.snapshot Ppj_obs.Registry.default in
  (match
     Ppj_obs.Snapshot.find
       ~labels:[ ("region", Trace.region_name Trace.Scratch) ]
       snap "oblivious.sort.pad_slots"
   with
  | Some { Ppj_obs.Snapshot.value = Ppj_obs.Snapshot.Gauge v; _ } ->
      Alcotest.(check (float 0.)) "pad slots gauge" 3. v
  | _ -> Alcotest.fail "oblivious.sort.pad_slots gauge missing");
  match Ppj_obs.Snapshot.find snap "oblivious.sort.pad_slots_total" with
  | Some { Ppj_obs.Snapshot.value = Ppj_obs.Snapshot.Counter c; _ } ->
      Alcotest.(check bool) "cumulative counter" true (c >= 3)
  | _ -> Alcotest.fail "oblivious.sort.pad_slots_total counter missing"

let test_sort_trace_data_independent () =
  (* Definition 1 for the sort primitive: same length, any data, same
     trace. *)
  let run values =
    let _, co, n = setup_region values ~pad:false in
    let before = Co.transfers co in
    Sort.sort co Trace.Scratch ~n ~compare:String.compare;
    (Co.trace co, Co.transfers co - before)
  in
  let t1, c1 = run [| "d"; "a"; "c"; "b" |] in
  let t2, c2 = run [| "a"; "a"; "a"; "a" |] in
  Alcotest.(check bool) "identical traces" true (Trace.equal t1 t2);
  Alcotest.(check int) "4 transfers per comparator" (4 * Bitonic.comparator_count 4) c1;
  Alcotest.(check int) "same cost" c1 c2

let test_sentinels_sort_last () =
  let w = 3 in
  let values = [| Sort.sentinel ~width:w; "bbb"; Sort.sentinel ~width:w; "aaa" |] in
  let _, co, _ = setup_region values ~pad:false in
  Sort.sort co Trace.Scratch ~n:4 ~compare:String.compare;
  let out = read_back co 4 in
  Alcotest.(check (array string)) "reals first"
    [| "aaa"; "bbb"; Sort.sentinel ~width:w; Sort.sentinel ~width:w |]
    out

let test_is_sentinel () =
  Alcotest.(check bool) "sentinel" true (Sort.is_sentinel (Sort.sentinel ~width:5));
  Alcotest.(check bool) "not sentinel" false (Sort.is_sentinel "hello")

(* --- Buffered decoy filter --- *)

let filter_case ~src_len ~reals ~delta () =
  let width = 9 in
  let host = Host.create () in
  let co = Co.create ~host ~m:8 ~seed:7 () in
  let (_ : Host.t) = Host.define_region host Trace.Output ~size:src_len in
  (* Scatter [reals] real oTuples among decoys. *)
  let st = Random.State.make [| src_len; reals |] in
  let positions = Array.init src_len Fun.id in
  for i = src_len - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = positions.(i) in
    positions.(i) <- positions.(j);
    positions.(j) <- t
  done;
  let real_set = Array.sub positions 0 reals in
  Array.iteri
    (fun _ _ -> ())
    positions;
  for i = 0 to src_len - 1 do
    let is_real = Array.exists (( = ) i) real_set in
    Co.put co Trace.Output i
      (if is_real then Decoy.real (Printf.sprintf "payl%04d" i) else Decoy.decoy ~payload:(width - 1))
  done;
  let buffer =
    Filter.run co ~src:Trace.Output ~src_len ~mu:reals ?delta
      ~is_real:(fun o -> not (Decoy.is_decoy o))
      ~width ()
  in
  let kept = List.init reals (fun i -> Co.get co buffer i) in
  Alcotest.(check int) "all reals kept" reals
    (List.length (List.filter (fun o -> not (Decoy.is_decoy o)) kept));
  (* and they are exactly the planted ones *)
  let planted =
    Array.to_list real_set |> List.map (fun i -> Printf.sprintf "payl%04d" i) |> List.sort compare
  in
  let got = List.map Decoy.payload kept |> List.sort compare in
  Alcotest.(check (list string)) "payloads" planted got

let test_filter_small = filter_case ~src_len:40 ~reals:6 ~delta:None
let test_filter_delta1 = filter_case ~src_len:24 ~reals:5 ~delta:(Some 1)
let test_filter_large_delta = filter_case ~src_len:24 ~reals:5 ~delta:(Some 64)
let test_filter_all_real = filter_case ~src_len:10 ~reals:10 ~delta:None
let test_filter_one_real = filter_case ~src_len:33 ~reals:1 ~delta:(Some 3)

let test_filter_cost_formula () =
  let c = Filter.comparisons ~omega:1000 ~mu:50 ~delta:25 in
  let expect = (1000. -. 50.) /. 25. *. (75. /. 4.) *. ((log 75. /. log 2.) ** 2.) in
  Alcotest.(check (float 1e-6)) "C formula" expect c;
  Alcotest.(check (float 1e-6)) "transfers = 4C" (4. *. c)
    (Filter.transfers ~omega:1000 ~mu:50 ~delta:25)

let test_filter_optimal_delta () =
  (* Δ* is the argmin of the transfer count (Eqn. 5.1); the paper solves
     it approximately via the fixed point Δ = μ·log2(μ+Δ)/2.  Check local
     optimality and that the argmin's cost is no worse than the paper's
     fixed-point solution. *)
  let mu = 6400 in
  let omega0 = 200_000 in
  let d = Filter.optimal_delta ~mu in
  let cost delta = Filter.transfers ~omega:omega0 ~mu ~delta in
  List.iter
    (fun other ->
      Alcotest.(check bool)
        (Printf.sprintf "argmin beats delta=%d" other)
        true
        (cost d <= cost other +. 1e-6))
    [ 1; d / 2; d - 7; d + 7; 2 * d; mu; 10 * mu ];
  let fp = ref 1000. in
  for _ = 1 to 60 do
    fp := float_of_int mu *. (log (float_of_int mu +. !fp) /. log 2.) /. 2.
  done;
  Alcotest.(check bool) "no worse than the paper's fixed point" true
    (cost d <= cost (int_of_float !fp) +. 1e-6);
  (* and it beats naive whole-list sorting for L >> S *)
  let omega = 640_000 in
  let whole = float_of_int omega *. ((log (float_of_int omega) /. log 2.) ** 2.) in
  Alcotest.(check bool) "beats single big sort" true
    (Filter.transfers ~omega ~mu ~delta:d < whole)

let test_filter_trace_data_independent () =
  let run seed =
    let host = Host.create () in
    let co = Co.create ~host ~m:8 ~seed:11 () in
    let (_ : Host.t) = Host.define_region host Trace.Output ~size:20 in
    let st = Random.State.make [| seed |] in
    let reals = 4 in
    (* different *placement* of the 4 reals each run *)
    let chosen = Array.init 20 (fun i -> i) in
    for i = 19 downto 1 do
      let j = Random.State.int st (i + 1) in
      let t = chosen.(i) in
      chosen.(i) <- chosen.(j);
      chosen.(j) <- t
    done;
    for i = 0 to 19 do
      let is_real = Array.exists (( = ) i) (Array.sub chosen 0 reals) in
      Co.put co Trace.Output i (if is_real then Decoy.real "12345678" else Decoy.decoy ~payload:8)
    done;
    ignore
      (Filter.run co ~src:Trace.Output ~src_len:20 ~mu:reals ~delta:3
         ~is_real:(fun o -> not (Decoy.is_decoy o))
         ~width:9 ());
    Co.trace co
  in
  Alcotest.(check bool) "placement-independent trace" true (Trace.equal (run 1) (run 2))

(* --- Square-root ORAM --- *)

module Oram = Ppj_oblivious.Oram

let oram_setup ?(n = 20) () =
  let host = Host.create () in
  let co = Co.create ~host ~m:8 ~seed:3 () in
  let values = Array.init n (fun i -> Printf.sprintf "value-%04d" i) in
  (co, values, Oram.create co ~values)

let prop_oram_correct =
  qtest "oram reads return the right values across epochs" ~count:20
    QCheck.(pair (int_range 2 25) (int_range 0 1000))
    (fun (n, seed) ->
      let co, values, oram = oram_setup ~n () in
      ignore co;
      let st = Random.State.make [| seed |] in
      let ok = ref true in
      for _ = 1 to 4 * n do
        let i = Random.State.int st n in
        if not (String.equal (Oram.read oram i) values.(i)) then ok := false
      done;
      !ok && Oram.epochs oram > 0)

let test_oram_prp_bijective () =
  let _, _, oram = oram_setup ~n:30 () in
  let m = Oram.n oram + Oram.shelter_size oram in
  List.iter
    (fun epoch ->
      let seen = Array.make m false in
      for x = 0 to m - 1 do
        seen.(Oram.prp oram ~epoch x) <- true
      done;
      if not (Array.for_all Fun.id seen) then
        Alcotest.failf "epoch %d prp is not a bijection" epoch)
    [ 0; 1; 2; 7 ]

let test_oram_store_visited_once_per_epoch () =
  (* The Goldreich-Ostrovsky invariant: within an epoch no store position
     is read twice, even when the logical sequence repeats one index. *)
  let co, _, oram = oram_setup ~n:16 () in
  let shelter = Oram.shelter_size oram in
  let before = Trace.length (Co.trace co) in
  for _ = 1 to shelter do
    ignore (Oram.read oram 5)
  done;
  let entries = Trace.to_list (Co.trace co) in
  let epoch_reads =
    List.filteri (fun i _ -> i >= before) entries
    |> List.filter (fun (e : Trace.entry) ->
           e.Trace.op = Trace.Read && e.Trace.region = Trace.Oram_store)
    (* the re-permutation at epoch end also reads the store; keep only the
       per-access single visits, which come in shelter+1-read groups *)
  in
  let positions =
    List.filteri (fun i _ -> i < shelter) epoch_reads
    |> List.map (fun (e : Trace.entry) -> e.Trace.index)
  in
  Alcotest.(check int) "distinct positions" shelter
    (List.length (List.sort_uniq compare positions))

let test_oram_fixed_access_shape () =
  (* Every read inside an epoch costs exactly shelter-scan + 1 store read
     + 1 shelter write, independent of the index or hit/miss. *)
  let co, _, oram = oram_setup ~n:16 () in
  let shelter = Oram.shelter_size oram in
  let cost i =
    let before = Trace.length (Co.trace co) in
    ignore (Oram.read oram i);
    Trace.length (Co.trace co) - before
  in
  (* Stay inside one epoch (shelter - 1 reads after a fresh epoch). *)
  let c1 = cost 3 in
  let c2 = cost 3 (* shelter hit *) in
  ignore shelter;
  Alcotest.(check int) "per-read transfers" (Oram.shelter_size oram + 2) c1;
  Alcotest.(check int) "hit and miss identical" c1 c2

let test_oram_bad_index () =
  let _, _, oram = oram_setup ~n:8 () in
  Alcotest.check_raises "out of range" (Invalid_argument "Oram.read: index out of range")
    (fun () -> ignore (Oram.read oram 8))

(* --- Shuffle --- *)

let test_shuffle_permutes () =
  let values = Array.init 20 (fun i -> Printf.sprintf "v%03d" i) in
  let host = Host.create () in
  let co = Co.create ~host ~m:8 ~seed:13 () in
  let (_ : Host.t) =
    Host.define_region host Trace.Scratch ~size:(Bitonic.next_pow2 20)
  in
  Array.iteri (fun i v -> Co.put co Trace.Scratch i v) values;
  Shuffle.shuffle co Trace.Scratch ~n:20 ~width:4;
  let out = Array.init 20 (fun i -> Co.get co Trace.Scratch i) in
  let sorted = Array.copy out in
  Array.sort compare sorted;
  Alcotest.(check (array string)) "permutation" values sorted

let test_shuffle_changes_order () =
  let values = Array.init 64 (fun i -> Printf.sprintf "v%03d" i) in
  let host = Host.create () in
  let co = Co.create ~host ~m:8 ~seed:17 () in
  let (_ : Host.t) = Host.define_region host Trace.Scratch ~size:64 in
  Array.iteri (fun i v -> Co.put co Trace.Scratch i v) values;
  Shuffle.shuffle co Trace.Scratch ~n:64 ~width:4;
  let out = Array.init 64 (fun i -> Co.get co Trace.Scratch i) in
  Alcotest.(check bool) "not identity" true (out <> values)

let () =
  Alcotest.run "oblivious"
    [ ( "bitonic",
        [ Alcotest.test_case "next_pow2" `Quick test_next_pow2;
          Alcotest.test_case "pow2 required" `Quick test_schedule_requires_pow2;
          Alcotest.test_case "exact counts" `Quick test_counts_match_formula;
          Alcotest.test_case "schedule deterministic" `Quick test_schedule_data_independent;
          Alcotest.test_case "schedule memoized" `Quick test_schedule_memoized;
          Alcotest.test_case "0-1 principle, exhaustive to n=16" `Quick test_bitonic_01_principle;
          prop_bitonic_01_random;
          prop_oddeven_01_random;
          prop_bitonic_sorts;
          prop_bitonic_sorts_adversarial
        ] );
      ( "oddeven",
        [ Alcotest.test_case "fewer comparators than bitonic" `Quick test_oddeven_cheaper_than_bitonic;
          Alcotest.test_case "known comparator counts" `Quick test_oddeven_known_counts;
          Alcotest.test_case "region sort via odd-even" `Quick test_sort_with_oddeven_network;
          Alcotest.test_case "0-1 principle, exhaustive to n=16" `Quick test_oddeven_01_principle;
          prop_oddeven_sorts
        ] );
      ( "sort",
        [ Alcotest.test_case "sorts a region" `Quick test_sort_region;
          Alcotest.test_case "padded sort" `Quick test_sort_padded_region;
          Alcotest.test_case "pad overhead gauge" `Quick test_sort_padded_gauge;
          Alcotest.test_case "trace data-independence + cost" `Quick test_sort_trace_data_independent;
          Alcotest.test_case "sentinels last" `Quick test_sentinels_sort_last;
          Alcotest.test_case "is_sentinel" `Quick test_is_sentinel
        ] );
      ( "filter",
        [ Alcotest.test_case "keeps reals (defaults)" `Quick test_filter_small;
          Alcotest.test_case "delta = 1" `Quick test_filter_delta1;
          Alcotest.test_case "delta > source" `Quick test_filter_large_delta;
          Alcotest.test_case "all real" `Quick test_filter_all_real;
          Alcotest.test_case "single real" `Quick test_filter_one_real;
          Alcotest.test_case "cost formula" `Quick test_filter_cost_formula;
          Alcotest.test_case "optimal delta fixed point" `Quick test_filter_optimal_delta;
          Alcotest.test_case "trace data-independence" `Quick test_filter_trace_data_independent
        ] );
      ( "oram",
        [ Alcotest.test_case "prp bijective" `Quick test_oram_prp_bijective;
          Alcotest.test_case "store visited once per epoch" `Quick test_oram_store_visited_once_per_epoch;
          Alcotest.test_case "fixed access shape" `Quick test_oram_fixed_access_shape;
          Alcotest.test_case "bad index" `Quick test_oram_bad_index;
          prop_oram_correct
        ] );
      ( "shuffle",
        [ Alcotest.test_case "is a permutation" `Quick test_shuffle_permutes;
          Alcotest.test_case "changes order" `Quick test_shuffle_changes_order
        ] )
    ]
