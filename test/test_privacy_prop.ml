(* Property-based hardening of Definitions 1 and 3.

   test_privacy.ml checks a handful of hand-picked instances; here we let
   QCheck draw the shapes.  For every safe algorithm we generate random
   same-shape instance *pairs* — identical |A|, |B|, S and maximum
   multiplicity, freshly random data on each side — run both under the
   same coprocessor seed and require Privacy.check to return
   [Indistinguishable].  A negative control does the mirror-image check on
   the naive nested loop: pairs whose match counts differ must be
   [Distinguishable].

   Every generator is driven by an explicit [Random.State] seed via
   [QCheck.Test.check_exn ~rand], so the suite is deterministic run to
   run: a failure here is a real privacy regression, not flaky sampling. *)

open Ppj_core
module W = Ppj_relation.Workload
module P = Ppj_relation.Predicate
module Rng = Ppj_crypto.Rng
module Co = Ppj_scpu.Coprocessor

let pred = P.equijoin2 "key" "key"
let runs_per_property = 20

(* A random joinable shape plus two distinct data seeds.  The workload
   generator requires matches <= nb and matches <= na * mult. *)
type shape = { na : int; nb : int; mult : int; matches : int; s1 : int; s2 : int }

let shape_gen =
  let open QCheck.Gen in
  let* na = int_range 4 9 in
  let* nb = int_range 4 12 in
  let* mult = int_range 1 3 in
  let* matches = int_range 1 (min nb (na * mult)) in
  let* s1 = int_range 0 9999 in
  let* s2 = int_range 0 9999 in
  let s2 = if s2 = s1 then s2 + 10000 else s2 in
  return { na; nb; mult; matches; s1; s2 }

let pp_shape sh =
  Printf.sprintf "{na=%d; nb=%d; mult=%d; matches=%d; s1=%d; s2=%d}" sh.na sh.nb sh.mult
    sh.matches sh.s1 sh.s2

let shape_arb = QCheck.make ~print:pp_shape shape_gen

let trace_of sh ~data_seed run =
  let rng = Rng.create data_seed in
  let a, b =
    W.equijoin_pair rng ~na:sh.na ~nb:sh.nb ~matches:sh.matches ~max_multiplicity:sh.mult
  in
  (* Fixed coprocessor seed: Definition 1 quantifies over the data only. *)
  let inst = Instance.create ~m:3 ~seed:1234 ~predicate:pred [ a; b ] in
  ignore (run inst);
  Co.trace (Instance.co inst)

let indistinguishable_on sh run =
  let runs = List.map (fun s () -> trace_of sh ~data_seed:s run) [ sh.s1; sh.s2 ] in
  match Privacy.check ~runs with
  | Privacy.Indistinguishable -> true
  | Privacy.Distinguishable _ -> false

(* Each safe algorithm becomes one deterministic Alcotest case running
   [runs_per_property] random instance pairs. *)
let property_case ~qcheck_seed name run =
  let cell =
    QCheck.Test.make_cell ~count:runs_per_property ~name shape_arb (fun sh ->
        indistinguishable_on sh run)
  in
  Alcotest.test_case name `Quick (fun () ->
      QCheck.Test.check_cell_exn ~rand:(Random.State.make [| qcheck_seed |]) cell)

let safe_algorithms =
  [ ("algorithm 1", fun i -> ignore (Algorithm1.run i ~n:3));
    ("algorithm 1 variant", fun i -> ignore (Algorithm1.Variant.run i ~n:3));
    ("algorithm 2", fun i -> ignore (Algorithm2.run i ~n:3 ()));
    ("algorithm 3", fun i -> ignore (Algorithm3.run i ~n:3 ~attr_a:"key" ~attr_b:"key" ()));
    ("algorithm 4", fun i -> ignore (Algorithm4.run i ()));
    ("algorithm 5", fun i -> ignore (Algorithm5.run i));
    ("algorithm 6", fun i -> ignore (Algorithm6.run i ~eps:1e-12 ()));
    ("algorithm 7", fun i -> ignore (Algorithm7.run i ~attr_a:"key" ~attr_b:"key"));
    ("algorithm 8", fun i -> ignore (Algorithm8.run i ~attr_a:"key" ~attr_b:"key"))
  ]

let definition_cases =
  List.mapi
    (fun k (name, run) -> property_case ~qcheck_seed:(4242 + k) name run)
    safe_algorithms

(* Negative control: instance pairs engineered to have *different* match
   counts (same |A| and |B|).  The naive nested loop writes one output
   tuple per match, so its trace must diverge — if this property ever
   passed vacuously, the positive properties above would be meaningless. *)
let control_gen =
  let open QCheck.Gen in
  let* na = int_range 4 9 in
  let* nb = int_range 4 12 in
  let* m1 = int_range 0 (min nb na) in
  let* m2 = int_range 0 (min nb na - 1) in
  let m2 = if m2 >= m1 then m2 + 1 else m2 in
  let* s = int_range 0 9999 in
  return (na, nb, m1, m2, s)

let control_arb =
  QCheck.make
    ~print:(fun (na, nb, m1, m2, s) ->
      Printf.sprintf "{na=%d; nb=%d; m1=%d; m2=%d; s=%d}" na nb m1 m2 s)
    control_gen

let naive_trace ~na ~nb ~matches ~data_seed =
  let rng = Rng.create data_seed in
  let a, b = W.equijoin_pair rng ~na ~nb ~matches ~max_multiplicity:1 in
  let inst = Instance.create ~m:3 ~seed:1234 ~predicate:pred [ a; b ] in
  ignore (Unsafe.naive_nested_loop inst);
  Co.trace (Instance.co inst)

let control_case =
  let cell =
    QCheck.Test.make_cell ~count:runs_per_property ~name:"naive nested loop leaks"
      control_arb (fun (na, nb, m1, m2, s) ->
        let runs =
          [ (fun () -> naive_trace ~na ~nb ~matches:m1 ~data_seed:s);
            (fun () -> naive_trace ~na ~nb ~matches:m2 ~data_seed:(s + 1))
          ]
        in
        match Privacy.check ~runs with
        | Privacy.Distinguishable _ -> true
        | Privacy.Indistinguishable -> false)
  in
  Alcotest.test_case "naive nested loop leaks" `Quick (fun () ->
      QCheck.Test.check_cell_exn ~rand:(Random.State.make [| 777 |]) cell)

let () =
  Alcotest.run "privacy-prop"
    [ ("definition-holds-randomized", definition_cases);
      ("negative-control", [ control_case ])
    ]
