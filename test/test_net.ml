(* The wire protocol end to end: framing, codecs, loopback sessions that
   must deliver byte-identical tuples to the in-process service, the
   adversary's view of the wire, client retry/timeout behaviour under
   injected faults, protocol error paths, and a real two-process join
   over a Unix-domain socket. *)

open Ppj_net
module Ch = Ppj_scpu.Channel
module W = Ppj_relation.Workload
module P = Ppj_relation.Predicate
module T = Ppj_relation.Tuple
module Schema = Ppj_relation.Schema
module Relation = Ppj_relation.Relation
module Value = Ppj_relation.Value
module Rng = Ppj_crypto.Rng
module Service = Ppj_core.Service
module Registry = Ppj_obs.Registry
module Counter = Ppj_obs.Counter

let mac_key = "test-net-mac-key"
let schema = W.keyed_schema ()

let contract =
  { Ch.contract_id = "contract-net-001";
    providers = [ "alice"; "bob" ];
    recipient = "carol";
    predicate = "eq(key,key)";
  }

let workload () =
  let rng = Rng.create 11 in
  W.equijoin_pair rng ~na:12 ~nb:18 ~matches:14 ~max_multiplicity:3

let service_config algorithm = { Service.m = 4; seed = 9; algorithm }

(* What the recipient decodes when the same join runs entirely in
   process — the network path must deliver these exact bytes. *)
let in_process_delivery algorithm =
  let pa = Ch.party ~id:"alice" ~secret:(String.make 16 'a') in
  let pb = Ch.party ~id:"bob" ~secret:(String.make 16 'b') in
  let pc = Ch.party ~id:"carol" ~secret:(String.make 16 'c') in
  let a, b = workload () in
  match
    Service.run (service_config algorithm) ~contract
      ~submissions:
        [ (pa, schema, Ch.submit pa contract a); (pb, schema, Ch.submit pb contract b) ]
      ~recipient:pc ~predicate:(P.equijoin2 "key" "key")
  with
  | Ok o -> List.map T.encode o.Service.delivered
  | Error e -> Alcotest.fail e

let no_sleep = { Client.default_config with recv_timeout = 0.05; sleep = ignore }

let client ?config ?registry ?tap ?faults server =
  Client.create ?config ?registry (Transport.loopback ?tap ?faults server)

(* Wire faults come from the one plan grammar the whole stack shares. *)
let inj ?registry s =
  match Ppj_fault.Plan.of_string s with
  | Ok plan -> Ppj_fault.Injector.create ?registry plan
  | Error e -> Alcotest.fail ("bad fault plan: " ^ e)

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1)) in
  n = 0 || go 0

(* --- framing --------------------------------------------------------- *)

let test_frame_roundtrip () =
  let frames =
    [ { Frame.tag = 1; seq = 0; payload = "" };
      { Frame.tag = 255; seq = Frame.max_seq; payload = "x" };
      { Frame.tag = 7; seq = 12345; payload = String.init 300 (fun i -> Char.chr (i mod 256)) };
    ]
  in
  let bytes = String.concat "" (List.map Frame.encode frames) in
  (* Deliver one byte at a time: frames must reassemble exactly. *)
  let d = Frame.Decoder.create () in
  let out = ref [] in
  String.iter
    (fun c ->
      Frame.Decoder.feed d (String.make 1 c);
      match Frame.Decoder.next d with
      | Ok (Some f) -> out := f :: !out
      | Ok None -> ()
      | Error e -> Alcotest.fail e)
    bytes;
  Alcotest.(check bool) "all frames recovered" true (List.rev !out = frames);
  Alcotest.(check int) "nothing left over" 0 (Frame.Decoder.buffered d)

let test_frame_rejects_oversized () =
  let d = Frame.Decoder.create () in
  let b = Buffer.create 8 in
  Buffer.add_int32_be b (Int32.of_int (Frame.max_payload + 6));
  Frame.Decoder.feed d (Buffer.contents b);
  match Frame.Decoder.next d with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized length prefix accepted"

let test_frame_large_payload_chunked () =
  (* A ~1 MiB frame trickled in small chunks, then two small frames in
     one feed: the offset-based decoder must reassemble all three and
     end empty (this path was quadratic when the buffer was re-copied on
     every feed). *)
  let big = { Frame.tag = 9; seq = 41; payload = String.init (1 lsl 20) (fun i -> Char.chr (i land 0xff)) } in
  let small1 = { Frame.tag = 2; seq = 42; payload = "alpha" } in
  let small2 = { Frame.tag = 3; seq = 43; payload = "" } in
  let bytes = Frame.encode big ^ Frame.encode small1 ^ Frame.encode small2 in
  let d = Frame.Decoder.create () in
  let out = ref [] in
  let chunk = 4093 in
  let n = String.length bytes in
  let rec feed off =
    if off < n then begin
      Frame.Decoder.feed d (String.sub bytes off (min chunk (n - off)));
      let rec pop () =
        match Frame.Decoder.next d with
        | Ok (Some f) ->
            out := f :: !out;
            pop ()
        | Ok None -> ()
        | Error e -> Alcotest.fail e
      in
      pop ();
      feed (off + chunk)
    end
  in
  feed 0;
  Alcotest.(check bool) "all three frames recovered" true
    (List.rev !out = [ big; small1; small2 ]);
  Alcotest.(check int) "nothing left over" 0 (Frame.Decoder.buffered d)

(* --- message codecs -------------------------------------------------- *)

let test_wire_roundtrip () =
  let msgs =
    [ Wire.Attest_request { version = 1; ctx = None };
      Wire.Attest_chain (Service.attestation_chain ());
      Wire.Hello { Ch.Handshake.id = "alice"; gx = 123456; mac = "m" };
      Wire.Hello_reply { Ch.Handshake.gy = 654321; mac = "mm" };
      Wire.Contract { sealed = "\x00\x01opaque" };
      Wire.Contract_ok;
      Wire.Upload_begin { sealed_schema = "s"; chunks = 3 };
      Wire.Upload_chunk { seq = 2; bytes = "chunk" };
      Wire.Upload_done;
      Wire.Upload_ok;
      Wire.Execute { sealed_config = "cfg" };
      Wire.Execute_ok { transfers = 42 };
      Wire.Fetch;
      Wire.Result { sealed_schema = "a"; sealed_body = "b" };
      Wire.Error { code = Wire.Auth_failed; message = "nope" };
    ]
  in
  List.iter
    (fun m ->
      match Wire.of_frame (Wire.to_frame m) with
      | Ok m' -> Alcotest.(check bool) "roundtrips" true (m = m')
      | Error e -> Alcotest.fail e)
    msgs

let test_codec_roundtrips () =
  (match Wire.contract_of_string (Wire.contract_to_string contract) with
  | Ok c -> Alcotest.(check bool) "contract" true (c = contract)
  | Error e -> Alcotest.fail e);
  (match Wire.schema_of_string (Wire.schema_to_string schema) with
  | Ok s -> Alcotest.(check bool) "schema" true (Schema.fields s = Schema.fields schema)
  | Error e -> Alcotest.fail e);
  List.iter
    (fun algorithm ->
      let cfg = service_config algorithm in
      match Wire.config_of_string (Wire.config_to_string cfg) with
      | Ok c -> Alcotest.(check bool) "config" true (c = cfg)
      | Error e -> Alcotest.fail e)
    [ Service.Alg1 { n = 3 };
      Service.Alg3 { n = 2; attr_a = "key"; attr_b = "key" };
      Service.Alg4;
      Service.Alg6 { eps = 1e-12 };
      Service.Alg7 { attr_a = "key"; attr_b = "key" };
      Service.Alg8 { attr_a = "key"; attr_b = "key" };
      Service.Auto { max_eps = 1e-9 };
    ]

let test_malformed_payload_rejected () =
  match Wire.of_frame { Frame.tag = 3; seq = 0; payload = "\x00\x00" } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated hello decoded"

let test_replies_echo_request_seq () =
  let server = Server.create ~mac_key () in
  let session = Server.open_session server in
  match
    Server.handle_frame server session
      (Wire.to_frame ~seq:77 (Wire.Attest_request { version = Wire.version; ctx = None }))
  with
  | [ f ] -> Alcotest.(check int) "seq echoed" 77 f.Frame.seq
  | l -> Alcotest.fail (Printf.sprintf "expected one reply, got %d" (List.length l))

(* --- loopback end to end --------------------------------------------- *)

let submit_over server id rel =
  let c = client ~config:no_sleep server in
  ok (Client.submit_relation c ~rng:(Rng.create (Hashtbl.hash id)) ~id ~mac_key ~contract ~schema rel);
  Client.close c

let fetch_over ?tap ?registry server algorithm =
  let c = client ~config:no_sleep ?registry ?tap server in
  let r =
    ok
      (Client.fetch_result c ~rng:(Rng.create 99) ~id:"carol" ~mac_key ~contract
         (service_config algorithm))
  in
  Client.close c;
  r

let run_loopback ?tap server algorithm =
  let a, b = workload () in
  (match tap with
  | Some _ ->
      (* share the tap across all three sessions so the adversary sees
         the whole exchange *)
      let submit_tapped id rel =
        let c = client ~config:no_sleep ?tap server in
        ok
          (Client.submit_relation c ~rng:(Rng.create (Hashtbl.hash id)) ~id ~mac_key ~contract
             ~schema rel);
        Client.close c
      in
      submit_tapped "alice" a;
      submit_tapped "bob" b
  | None ->
      submit_over server "alice" a;
      submit_over server "bob" b);
  fetch_over ?tap server algorithm

let test_loopback_matches_in_process algorithm () =
  let server = Server.create ~mac_key ~seed:5 () in
  let joined_schema, tuples = run_loopback server algorithm in
  Alcotest.(check bool) "joined schema arrives" true (Schema.fields joined_schema <> []);
  Alcotest.(check (list string))
    "byte-identical delivery"
    (in_process_delivery algorithm)
    (List.map T.encode tuples)

let test_server_metrics_exported () =
  let server = Server.create ~mac_key ~seed:5 () in
  let _ = run_loopback server Service.Alg4 in
  let snap = Registry.snapshot (Server.registry server) in
  List.iter
    (fun name ->
      if Ppj_obs.Snapshot.find snap name = None then Alcotest.fail (name ^ " not exported"))
    [ "net.server.sessions.opened";
      "net.server.frames.in";
      "net.server.frames.out";
      "net.server.bytes.in";
      "net.server.bytes.out";
      "net.server.contracts.registered";
      "net.server.submissions.accepted";
      "net.server.joins.executed";
      "net.server.join.seconds";
    ]

(* --- the adversary's view of the wire -------------------------------- *)

let marked_relation ~name ~marker keys =
  let sch =
    Schema.make [ { Schema.name = "key"; ty = Schema.TInt }; { name = "tag"; ty = Schema.TStr 24 } ]
  in
  Relation.make ~name sch (List.map (fun k -> T.make sch [ Value.Int k; Value.Str marker ]) keys)

let secret_contract =
  { Ch.contract_id = "super-secret-contract-identifier";
    providers = [ "alice"; "bob" ];
    recipient = "carol";
    predicate = "eq(key,key)";
  }

let run_marked server tap marker ~keys_a ~keys_b =
  let sch = (marked_relation ~name:"A" ~marker [ 1 ]).Relation.schema in
  let a = marked_relation ~name:"A" ~marker keys_a in
  let b = marked_relation ~name:"B" ~marker keys_b in
  let submit id rel =
    let c = client ~config:no_sleep ~tap server in
    ok
      (Client.submit_relation c ~rng:(Rng.create (Hashtbl.hash id)) ~id ~mac_key
         ~contract:secret_contract ~schema:sch rel);
    Client.close c
  in
  submit "alice" a;
  submit "bob" b;
  let c = client ~config:no_sleep ~tap server in
  let r =
    ok
      (Client.fetch_result c ~rng:(Rng.create 99) ~id:"carol" ~mac_key ~contract:secret_contract
         (service_config Service.Alg4))
  in
  Client.close c;
  r

let test_wire_leaks_only_shape () =
  (* Two inputs of identical sizes but different contents: the captured
     frame sequences must have identical (dir, tag, length) shapes, and
     neither capture may contain any plaintext secret. *)
  let marker1 = "TOPSECRET-PAYLOAD-AAAAA" in
  let marker2 = "TOPSECRET-PAYLOAD-BBBBB" in
  let tap1 = Wiretap.create () in
  let tap2 = Wiretap.create () in
  let _ =
    run_marked (Server.create ~mac_key ~seed:5 ()) tap1 marker1 ~keys_a:[ 1; 2; 3; 4 ]
      ~keys_b:[ 2; 3; 4; 5 ]
  in
  let _ =
    run_marked (Server.create ~mac_key ~seed:5 ()) tap2 marker2 ~keys_a:[ 6; 7; 8; 9 ]
      ~keys_b:[ 7; 8; 9; 10 ]
  in
  Alcotest.(check bool)
    "same shape across same-shape inputs" true
    (Wiretap.shape tap1 = Wiretap.shape tap2);
  let markers =
    [ marker1; secret_contract.Ch.contract_id; secret_contract.Ch.predicate ]
  in
  (match Wiretap.leaks tap1 ~markers with
  | [] -> ()
  | (m, i) :: _ -> Alcotest.fail (Printf.sprintf "marker %S visible in frame %d" m i));
  (* Sanity-check the detector itself: the marker is present in what the
     provider encrypted, so a plaintext wire would have tripped it. *)
  Alcotest.(check bool)
    "detector sees plaintext when given one" true
    (Wiretap.leaks tap1 ~markers:[ "alice" ] <> [])

(* --- retries and timeouts -------------------------------------------- *)

let counter_value reg name = Counter.value (Registry.counter reg name)

let test_retry_recovers_from_drop () =
  let server = Server.create ~mac_key () in
  let sleeps = ref [] in
  let config =
    { Client.default_config with
      recv_timeout = 0.01;
      backoff = Client.Exponential;
      sleep = (fun d -> sleeps := d :: !sleeps);
    }
  in
  let reg = Registry.create () in
  let faults = inj ~registry:reg "drop@dir=to_client,tag=contract-ok" in
  let c = client ~config ~registry:reg ~faults server in
  ok (Client.attest c);
  ok (Client.handshake c ~rng:(Rng.create 1) ~id:"carol" ~mac_key);
  ok (Client.bind_contract c contract);
  Alcotest.(check int) "one retry" 1 (counter_value reg "net.client.retries");
  Alcotest.(check int) "one timeout" 1 (counter_value reg "net.client.timeouts");
  Alcotest.(check int) "one injected drop" 1 (counter_value reg "fault.net.drop");
  Alcotest.(check (list (float 1e-9))) "one backoff sleep" [ 0.05 ] !sleeps

let test_retries_exhaust () =
  let server = Server.create ~mac_key () in
  let sleeps = ref [] in
  let config =
    { Client.default_config with
      recv_timeout = 0.01;
      max_retries = 3;
      backoff = Client.Exponential;
      sleep = (fun d -> sleeps := d :: !sleeps);
    }
  in
  let reg = Registry.create () in
  let faults = inj ~registry:reg "drop@dir=to_client,count=100" in
  let c = client ~config ~registry:reg ~faults server in
  (match Client.attest c with
  | Ok () -> Alcotest.fail "attest succeeded with every reply dropped"
  | Error e -> Alcotest.(check bool) "mentions attempts" true (contains ~sub:"4 attempt" e));
  Alcotest.(check int) "retries = max_retries" 3 (counter_value reg "net.client.retries");
  Alcotest.(check int) "a timeout per attempt" 4 (counter_value reg "net.client.timeouts");
  (* one reply dropped per attempt — the fault metrics account for every
     timeout the client saw *)
  Alcotest.(check int) "a drop per attempt" 4 (counter_value reg "fault.net.drop");
  Alcotest.(check int) "injected total matches" 4
    (Ppj_fault.Injector.injected faults);
  Alcotest.(check (list (float 1e-9)))
    "exponential backoff" [ 0.2; 0.1; 0.05 ] !sleeps

let test_non_idempotent_not_retried () =
  let server = Server.create ~mac_key () in
  let reg = Registry.create () in
  let faults = inj ~registry:reg "drop@dir=to_client,tag=upload-ok" in
  let c = client ~config:no_sleep ~registry:reg ~faults server in
  let a, _ = workload () in
  ok (Client.attest c);
  ok (Client.handshake c ~rng:(Rng.create 2) ~id:"alice" ~mac_key);
  ok (Client.bind_contract c contract);
  (match Client.upload c ~schema a with
  | Ok () -> Alcotest.fail "upload succeeded with its ack dropped"
  | Error _ -> ());
  Alcotest.(check int) "upload not retried" 0 (counter_value reg "net.client.retries");
  Alcotest.(check int) "single timeout" 1 (counter_value reg "net.client.timeouts")

let test_execute_retry_is_idempotent () =
  (* A lost Execute_ok must not run the join twice: the retry is answered
     from the session's cached result. *)
  let server = Server.create ~mac_key ~seed:5 () in
  let a, b = workload () in
  submit_over server "alice" a;
  submit_over server "bob" b;
  let c = client ~config:no_sleep ~faults:(inj "drop@dir=to_client,tag=execute-ok") server in
  let _, tuples =
    ok
      (Client.fetch_result c ~rng:(Rng.create 99) ~id:"carol" ~mac_key ~contract
         (service_config Service.Alg4))
  in
  Alcotest.(check (list string))
    "delivery survives a lost execute ack"
    (in_process_delivery Service.Alg4)
    (List.map T.encode tuples);
  Alcotest.(check int) "join ran once" 1
    (counter_value (Server.registry server) "net.server.joins.executed")

let test_slow_reply_duplicate_discarded () =
  (* The reply is slow, not lost: the plan's [delay] holds the first
     Execute_ok until the retry's duplicate passes, so two replies to the
     same seq sit buffered.  The client must consume one and discard the
     other instead of handing it to the next RPC (which used to fail
     with "unexpected reply" and desync the whole exchange). *)
  let server = Server.create ~mac_key ~seed:5 () in
  let a, b = workload () in
  submit_over server "alice" a;
  submit_over server "bob" b;
  let reg = Registry.create () in
  let faults = inj ~registry:reg "delay@dir=to_client,tag=execute-ok" in
  let c = client ~config:no_sleep ~registry:reg ~faults server in
  ok (Client.attest c);
  ok (Client.handshake c ~rng:(Rng.create 99) ~id:"carol" ~mac_key);
  ok (Client.bind_contract c contract);
  let _ = ok (Client.execute c (service_config Service.Alg4)) in
  let _, tuples = ok (Client.fetch c) in
  Alcotest.(check (list string))
    "delivery survives a slow execute ack"
    (in_process_delivery Service.Alg4)
    (List.map T.encode tuples);
  Alcotest.(check int) "execute retried once" 1 (counter_value reg "net.client.retries");
  Alcotest.(check int) "one injected delay" 1 (counter_value reg "fault.net.delay");
  Alcotest.(check int) "duplicate reply dropped" 1
    (counter_value reg "net.client.stale.dropped");
  Alcotest.(check int) "join ran once" 1
    (counter_value (Server.registry server) "net.server.joins.executed")

let test_execute_config_change_recomputes () =
  (* A second Execute with a different config on the same session must
     not be served the first run's cached result. *)
  let server = Server.create ~mac_key ~seed:5 () in
  let a, b = workload () in
  submit_over server "alice" a;
  submit_over server "bob" b;
  let c = client ~config:no_sleep server in
  ok (Client.attest c);
  ok (Client.handshake c ~rng:(Rng.create 99) ~id:"carol" ~mac_key);
  ok (Client.bind_contract c contract);
  let joins () = counter_value (Server.registry server) "net.server.joins.executed" in
  let _ = ok (Client.execute c (service_config Service.Alg4)) in
  Alcotest.(check int) "first execute runs the join" 1 (joins ());
  let _ = ok (Client.execute c (service_config Service.Alg4)) in
  Alcotest.(check int) "same config is served from cache" 1 (joins ());
  let _ = ok (Client.execute c (service_config Service.Alg5)) in
  Alcotest.(check int) "changed config recomputes" 2 (joins ());
  let _, tuples = ok (Client.fetch c) in
  Alcotest.(check (list string))
    "fetch delivers the latest config's result"
    (in_process_delivery Service.Alg5)
    (List.map T.encode tuples)

(* --- coprocessor crash, client retry, checkpoint resume --------------- *)

let test_crash_resume_over_loopback () =
  (* The coprocessor dies mid-join.  The server answers the Execute with
     a typed Unavailable and stashes the crashed instance; the client's
     retry of the same config resumes it from the last sealed checkpoint
     and the delivery is still byte-identical to the fault-free run. *)
  let reg = Registry.create () in
  let faults = inj ~registry:reg "crash@t=150;checkpoint@every=32" in
  let server = Server.create ~mac_key ~seed:5 ~faults () in
  let a, b = workload () in
  submit_over server "alice" a;
  submit_over server "bob" b;
  let c = client ~config:no_sleep ~registry:reg server in
  let _, tuples =
    ok
      (Client.fetch_result c ~rng:(Rng.create 99) ~id:"carol" ~mac_key ~contract
         (service_config Service.Alg5))
  in
  Alcotest.(check (list string))
    "delivery survives a coprocessor crash"
    (in_process_delivery Service.Alg5)
    (List.map T.encode tuples);
  Alcotest.(check int) "the crash was injected" 1 (counter_value reg "fault.scpu.crash");
  Alcotest.(check int) "client saw one unavailable" 1
    (counter_value reg "net.client.unavailable");
  let sreg = Server.registry server in
  Alcotest.(check int) "server recorded the crash" 1
    (counter_value sreg "net.server.joins.crashed");
  Alcotest.(check int) "join concluded exactly once" 1
    (counter_value sreg "net.server.joins.executed")

(* --- chaos soak ------------------------------------------------------- *)

let test_chaos_soak_never_wrong () =
  (* Random-but-seeded plans against the full client/server stack: every
     run must end in the oracle's answer or a typed refusal — never a
     wrong answer (and, structurally, never a hang: nothing in the
     loopback stack sleeps). *)
  let reg = Registry.create () in
  let runs = Chaos.soak ~registry:reg ~seed0:1 ~runs:40 () in
  List.iter
    (fun r ->
      if not (Chaos.safe r) then
        Alcotest.fail
          (Printf.sprintf "seed %d plan %S: %s" r.Chaos.seed
             (Ppj_fault.Plan.to_string r.Chaos.plan)
             (Chaos.outcome_to_string r.Chaos.outcome)))
    runs;
  Alcotest.(check int) "all runs counted" 40 (counter_value reg "chaos.runs");
  Alcotest.(check bool) "some runs complete correctly" true
    (List.exists (fun r -> r.Chaos.outcome = Chaos.Correct) runs);
  Alcotest.(check bool) "some faults actually fired" true
    (List.exists (fun r -> r.Chaos.injected > 0) runs)

let test_chaos_runs_are_reproducible () =
  (* The same seed must reproduce the same plan, the same firings and
     the same outcome — a chaos finding is a bug report, not an
     anecdote. *)
  let once = Chaos.soak ~seed0:1 ~runs:10 () in
  let again = Chaos.soak ~seed0:1 ~runs:10 () in
  List.iter2
    (fun r r' ->
      Alcotest.(check string)
        (Printf.sprintf "seed %d plan reproduces" r.Chaos.seed)
        (Ppj_fault.Plan.to_string r.Chaos.plan)
        (Ppj_fault.Plan.to_string r'.Chaos.plan);
      Alcotest.(check string)
        (Printf.sprintf "seed %d outcome reproduces" r.Chaos.seed)
        (Chaos.outcome_to_string r.Chaos.outcome)
        (Chaos.outcome_to_string r'.Chaos.outcome);
      Alcotest.(check int)
        (Printf.sprintf "seed %d firings reproduce" r.Chaos.seed)
        r.Chaos.injected r'.Chaos.injected)
    once again

(* --- protocol error paths -------------------------------------------- *)

let reply_of server session msg =
  match Server.handle_frame server session (Wire.to_frame msg) with
  | [ f ] -> ok (Wire.of_frame f)
  | l -> Alcotest.fail (Printf.sprintf "expected one reply, got %d" (List.length l))

let check_error code = function
  | Wire.Error e when e.code = code -> ()
  | Wire.Error e -> Alcotest.fail ("wrong error: " ^ Wire.error_code_to_string e.code)
  | m -> Alcotest.fail (Format.asprintf "expected error, got %a" Wire.pp m)

let test_version_mismatch () =
  let server = Server.create ~mac_key () in
  let session = Server.open_session server in
  check_error Wire.Unsupported_version
    (reply_of server session (Wire.Attest_request { version = 99; ctx = None }))

let test_hello_before_attest () =
  let server = Server.create ~mac_key () in
  let session = Server.open_session server in
  let h, _ = Ch.Handshake.hello (Rng.create 3) ~id:"alice" ~mac_key in
  check_error Wire.Bad_state (reply_of server session (Wire.Hello h))

let test_wrong_mac_key_rejected () =
  let server = Server.create ~mac_key () in
  let c = client ~config:no_sleep server in
  ok (Client.attest c);
  match Client.handshake c ~rng:(Rng.create 4) ~id:"eve" ~mac_key:"not-the-real-mac-key" with
  | Ok () -> Alcotest.fail "handshake succeeded under the wrong identity key"
  | Error e ->
      Alcotest.(check bool) "typed auth failure" true (contains ~sub:"auth-failed" e)

let test_replayed_hello_rejected () =
  let server = Server.create ~mac_key () in
  let h, _ = Ch.Handshake.hello (Rng.create 5) ~id:"alice" ~mac_key in
  let s1 = Server.open_session server in
  let _ = reply_of server s1 (Wire.Attest_request { version = Wire.version; ctx = None }) in
  (match reply_of server s1 (Wire.Hello h) with
  | Wire.Hello_reply _ -> ()
  | m -> Alcotest.fail (Format.asprintf "expected hello-reply, got %a" Wire.pp m));
  (* An adversary replays the captured hello on a fresh connection. *)
  let s2 = Server.open_session server in
  let _ = reply_of server s2 (Wire.Attest_request { version = Wire.version; ctx = None }) in
  check_error Wire.Auth_failed (reply_of server s2 (Wire.Hello h))

let test_non_recipient_cannot_execute () =
  let server = Server.create ~mac_key () in
  let a, _ = workload () in
  let c = client ~config:no_sleep server in
  ok (Client.submit_relation c ~rng:(Rng.create 6) ~id:"alice" ~mac_key ~contract ~schema a);
  match Client.execute c (service_config Service.Alg4) with
  | Ok _ -> Alcotest.fail "a provider was allowed to execute"
  | Error e ->
      Alcotest.(check bool) "contract-rejected" true (contains ~sub:"contract-rejected" e)

let test_execute_before_uploads () =
  let server = Server.create ~mac_key () in
  let c = client ~config:no_sleep server in
  ok (Client.attest c);
  ok (Client.handshake c ~rng:(Rng.create 7) ~id:"carol" ~mac_key);
  ok (Client.bind_contract c contract);
  match Client.execute c (service_config Service.Alg4) with
  | Ok _ -> Alcotest.fail "execute succeeded with no submissions"
  | Error e ->
      Alcotest.(check bool) "missing-submission" true (contains ~sub:"missing-submission" e)

let establish server id =
  let session = Server.open_session server in
  let send msg = Server.handle_frame server session (Wire.to_frame msg) in
  let _ = send (Wire.Attest_request { version = Wire.version; ctx = None }) in
  let h, exponent = Ch.Handshake.hello (Rng.create 8) ~id ~mac_key in
  match send (Wire.Hello h) with
  | [ f ] -> (
      match ok (Wire.of_frame f) with
      | Wire.Hello_reply r -> (session, ok (Ch.Handshake.finish ~id ~mac_key ~exponent r))
      | m -> Alcotest.fail (Format.asprintf "expected hello-reply, got %a" Wire.pp m))
  | _ -> Alcotest.fail "handshake failed"

let test_contract_capacity_bounded () =
  let server = Server.create ~mac_key ~max_contracts:1 () in
  let c = client ~config:no_sleep server in
  ok (Client.attest c);
  ok (Client.handshake c ~rng:(Rng.create 12) ~id:"carol" ~mac_key);
  ok (Client.bind_contract c contract);
  (match Client.bind_contract c secret_contract with
  | Ok () -> Alcotest.fail "a second contract was registered past the capacity"
  | Error e ->
      Alcotest.(check bool) "typed rejection" true (contains ~sub:"contract-rejected" e);
      Alcotest.(check bool) "names the capacity" true (contains ~sub:"capacity" e));
  (* The already-registered contract can still be rebound. *)
  ok (Client.bind_contract c contract)

let test_out_of_order_chunk () =
  let server = Server.create ~mac_key () in
  let session, party = establish server "alice" in
  let send msg = Server.handle_frame server session (Wire.to_frame msg) in
  (match send (Wire.Contract { sealed = Ch.seal party (Wire.contract_to_string contract) }) with
  | [ f ] -> ( match ok (Wire.of_frame f) with Wire.Contract_ok -> () | _ -> Alcotest.fail "bind")
  | _ -> Alcotest.fail "bind failed");
  let sealed_schema = Ch.seal party (Wire.schema_to_string schema) in
  let _ = send (Wire.Upload_begin { sealed_schema; chunks = 2 }) in
  let _ = send (Wire.Upload_chunk { seq = 1; bytes = "later" }) in
  check_error Wire.Bad_state (reply_of server session Wire.Upload_done)

(* --- two OS processes over a Unix-domain socket ---------------------- *)

let test_unix_socket_two_process () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ppj-net-test-%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  match Unix.fork () with
  | 0 ->
      (* Child: a separate OS process running the service. *)
      (try
         let server = Server.create ~mac_key ~seed:5 () in
         Reactor.serve_unix (Reactor.create server) ~path ~max_sessions:3 ()
       with _ -> ());
      Unix._exit 0
  | pid ->
      Fun.protect
        ~finally:(fun () ->
          (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        (fun () ->
          let connect () =
            let rec go n =
              match Transport.connect_unix ~path () with
              | Ok t -> t
              | Error e -> if n = 0 then Alcotest.fail e else (Unix.sleepf 0.05; go (n - 1))
            in
            go 100
          in
          let a, b = workload () in
          let submit id rel =
            let c = Client.create (connect ()) in
            ok
              (Client.submit_relation c ~rng:(Rng.create (Hashtbl.hash id)) ~id ~mac_key ~contract
                 ~schema rel);
            Client.close c
          in
          submit "alice" a;
          submit "bob" b;
          let c = Client.create (connect ()) in
          let _, tuples =
            ok
              (Client.fetch_result c ~rng:(Rng.create 99) ~id:"carol" ~mac_key ~contract
                 (service_config Service.Alg5))
          in
          Client.close c;
          Alcotest.(check (list string))
            "cross-process delivery is byte-identical"
            (in_process_delivery Service.Alg5)
            (List.map T.encode tuples))

let test_unix_socket_survives_dead_client () =
  (* A client that bursts requests and vanishes without reading a single
     reply: the server's queued replies land on a closed socket, so the
     writes raise EPIPE — which, with SIGPIPE at its default disposition,
     would kill the whole server process.  serve_unix must ignore SIGPIPE,
     tear down just that connection, and keep serving: a full join must
     still complete afterwards. *)
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ppj-net-sigpipe-%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  match Unix.fork () with
  | 0 ->
      (try
         let server = Server.create ~mac_key ~seed:5 () in
         Reactor.serve_unix (Reactor.create server) ~path ~max_sessions:4 ()
       with _ -> ());
      Unix._exit 0
  | pid ->
      Fun.protect
        ~finally:(fun () ->
          (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        (fun () ->
          let connect () =
            let rec go n =
              match Transport.connect_unix ~path () with
              | Ok t -> t
              | Error e -> if n = 0 then Alcotest.fail e else (Unix.sleepf 0.05; go (n - 1))
            in
            go 100
          in
          (* the rude client: 64 requests, zero reads, immediate close *)
          let rude = connect () in
          let req =
            Frame.encode (Wire.to_frame ~seq:1 (Wire.Attest_request { version = Wire.version; ctx = None }))
          in
          for _ = 1 to 64 do
            rude.Transport.send req
          done;
          rude.Transport.close ();
          (* the server must still be alive and complete a join *)
          let a, b = workload () in
          let submit id rel =
            let c = Client.create (connect ()) in
            ok
              (Client.submit_relation c ~rng:(Rng.create (Hashtbl.hash id)) ~id ~mac_key ~contract
                 ~schema rel);
            Client.close c
          in
          submit "alice" a;
          submit "bob" b;
          let c = Client.create (connect ()) in
          let _, tuples =
            ok
              (Client.fetch_result c ~rng:(Rng.create 99) ~id:"carol" ~mac_key ~contract
                 (service_config Service.Alg4))
          in
          Client.close c;
          Alcotest.(check (list string))
            "join completes after a client died mid-reply"
            (in_process_delivery Service.Alg4)
            (List.map T.encode tuples))

let () =
  Alcotest.run "net"
    [ ( "frame",
        [ Alcotest.test_case "chunked roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "oversized rejected" `Quick test_frame_rejects_oversized;
          Alcotest.test_case "large payload in chunks" `Quick test_frame_large_payload_chunked;
        ] );
      ( "wire",
        [ Alcotest.test_case "message roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "payload codecs roundtrip" `Quick test_codec_roundtrips;
          Alcotest.test_case "malformed rejected" `Quick test_malformed_payload_rejected;
          Alcotest.test_case "replies echo request seq" `Quick test_replies_echo_request_seq;
        ] );
      ( "loopback",
        [ Alcotest.test_case "alg4 matches in-process" `Quick
            (test_loopback_matches_in_process Service.Alg4);
          Alcotest.test_case "alg5 matches in-process" `Quick
            (test_loopback_matches_in_process Service.Alg5);
          Alcotest.test_case "alg7 matches in-process" `Quick
            (test_loopback_matches_in_process (Service.Alg7 { attr_a = "key"; attr_b = "key" }));
          Alcotest.test_case "server metrics exported" `Quick test_server_metrics_exported;
        ] );
      ( "adversary",
        [ Alcotest.test_case "wire leaks only shape" `Quick test_wire_leaks_only_shape ] );
      ( "retry",
        [ Alcotest.test_case "recovers from a dropped reply" `Quick test_retry_recovers_from_drop;
          Alcotest.test_case "bounded retries exhaust" `Quick test_retries_exhaust;
          Alcotest.test_case "non-idempotent steps fail fast" `Quick
            test_non_idempotent_not_retried;
          Alcotest.test_case "execute retry reuses cached result" `Quick
            test_execute_retry_is_idempotent;
          Alcotest.test_case "slow duplicate reply is discarded" `Quick
            test_slow_reply_duplicate_discarded;
          Alcotest.test_case "changed execute config recomputes" `Quick
            test_execute_config_change_recomputes;
        ] );
      ( "recovery",
        [ Alcotest.test_case "crash resumes from checkpoint" `Quick
            test_crash_resume_over_loopback ] );
      ( "chaos",
        [ Alcotest.test_case "soak is never wrong, never hung" `Quick
            test_chaos_soak_never_wrong;
          Alcotest.test_case "runs are seed-reproducible" `Quick
            test_chaos_runs_are_reproducible;
        ] );
      ( "errors",
        [ Alcotest.test_case "version mismatch" `Quick test_version_mismatch;
          Alcotest.test_case "hello before attest" `Quick test_hello_before_attest;
          Alcotest.test_case "wrong mac key" `Quick test_wrong_mac_key_rejected;
          Alcotest.test_case "replayed hello" `Quick test_replayed_hello_rejected;
          Alcotest.test_case "non-recipient execute" `Quick test_non_recipient_cannot_execute;
          Alcotest.test_case "execute before uploads" `Quick test_execute_before_uploads;
          Alcotest.test_case "contract capacity bounded" `Quick test_contract_capacity_bounded;
          Alcotest.test_case "out-of-order chunk" `Quick test_out_of_order_chunk;
        ] );
      ( "unix",
        [ Alcotest.test_case "two-process join over a socket" `Quick
            test_unix_socket_two_process;
          Alcotest.test_case "server survives a client dying mid-reply" `Quick
            test_unix_socket_survives_dead_client;
        ] );
    ]
