(* Fault injection and crash recovery: the plan DSL, the injector's
   one-shot/window semantics, every tamper detection path, sealed
   checkpoint/resume (correctness, rollback rejection, and the extended
   privacy definitions), and client-visible behavior under fault plans. *)

open Ppj_core
module Plan = Ppj_fault.Plan
module Injector = Ppj_fault.Injector
module Trace = Ppj_scpu.Trace
module Host = Ppj_scpu.Host
module Co = Ppj_scpu.Coprocessor
module W = Ppj_relation.Workload
module P = Ppj_relation.Predicate
module T = Ppj_relation.Tuple
module Rng = Ppj_crypto.Rng
module Registry = Ppj_obs.Registry
module Snapshot = Ppj_obs.Snapshot

let counter reg name =
  match Snapshot.find (Registry.snapshot reg) name with
  | Some { Snapshot.value = Snapshot.Counter n; _ } -> n
  | _ -> 0

let tuple_set l = List.sort compare (List.map (fun t -> Format.asprintf "%a" T.pp t) l)

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let plan s =
  match Plan.of_string s with
  | Ok p -> p
  | Error e -> Alcotest.failf "plan %S rejected: %s" s e

(* --- Plan DSL --- *)

let test_plan_roundtrip () =
  let strings =
    [ "crash@t=40";
      "corrupt@t=3";
      "replay@t=7";
      "drop";
      "drop@dir=to_client,tag=execute-ok,skip=1,count=3";
      "dup@dir=to_server";
      "delay@tag=execute,count=2";
      "corrupt-frame@dir=to_client";
      "timeout@recv=2";
      "crash@t=12;checkpoint@every=8";
      "corrupt@t=1;drop@count=2;timeout@recv=0;checkpoint@every=16";
    ]
  in
  List.iter
    (fun s ->
      let p = plan s in
      let s' = Plan.to_string p in
      let p' = plan s' in
      if p <> p' then Alcotest.failf "plan %S does not roundtrip (canonical %S)" s s')
    strings;
  (* Canonical form is stable. *)
  let p = plan "drop@count=2,dir=to_client" in
  Alcotest.(check string) "canonical" (Plan.to_string p) (Plan.to_string (plan (Plan.to_string p)))

let test_plan_rejects_garbage () =
  List.iter
    (fun s ->
      match Plan.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "plan %S should be rejected" s)
    [ "explode@t=3"; "crash"; "crash@t=x"; "drop@dir=sideways"; "checkpoint@every=0"; "drop@bogus=1" ]

let test_plan_random_deterministic () =
  for seed = 0 to 49 do
    let p = Plan.random ~seed in
    let q = Plan.random ~seed in
    if p <> q then Alcotest.failf "Plan.random seed %d not deterministic" seed;
    let p' = plan (Plan.to_string p) in
    if p <> p' then
      Alcotest.failf "random plan (seed %d) %S does not roundtrip" seed (Plan.to_string p)
  done;
  let distinct =
    List.sort_uniq compare (List.init 50 (fun seed -> Plan.to_string (Plan.random ~seed)))
  in
  Alcotest.(check bool) "seeds explore the space" true (List.length distinct > 25)

(* --- Injector semantics --- *)

let test_injector_scpu_one_shot () =
  let inj = Injector.create (plan "corrupt@t=3") in
  Alcotest.(check bool) "before" true (Injector.on_transfer inj ~transfer:2 = None);
  Alcotest.(check bool) "fires" true (Injector.on_transfer inj ~transfer:3 = Some Injector.Corrupt);
  Alcotest.(check bool) "one-shot" true (Injector.on_transfer inj ~transfer:3 = None);
  Alcotest.(check int) "counted" 1 (counter (Injector.registry inj) "fault.scpu.corrupt")

let test_injector_net_window () =
  let inj = Injector.create (plan "drop@dir=to_client,tag=execute-ok,skip=1,count=2") in
  let hit dir tag = Injector.on_frame inj ~dir ~tag in
  Alcotest.(check bool) "wrong dir" true (hit Plan.To_server "execute-ok" = None);
  Alcotest.(check bool) "wrong tag" true (hit Plan.To_client "execute" = None);
  Alcotest.(check bool) "skip window" true (hit Plan.To_client "execute-ok" = None);
  Alcotest.(check bool) "fires 1" true (hit Plan.To_client "execute-ok" = Some Injector.Drop);
  Alcotest.(check bool) "fires 2" true (hit Plan.To_client "execute-ok" = Some Injector.Drop);
  Alcotest.(check bool) "exhausted" true (hit Plan.To_client "execute-ok" = None);
  Alcotest.(check int) "counted" 2 (counter (Injector.registry inj) "fault.net.drop");
  Alcotest.(check int) "total" 2 (Injector.injected inj)

let test_injector_recv_timeout () =
  let inj = Injector.create (plan "timeout@recv=2") in
  let calls = List.init 4 (fun _ -> Injector.on_recv inj) in
  Alcotest.(check (list bool)) "only call 2" [ false; false; true; false ] calls;
  Alcotest.(check int) "counted" 1 (counter (Injector.registry inj) "fault.recv.timeout")

(* --- Tamper detection paths --- *)

let scratch_co ?faults ?checkpoint_every ?nvram ?(m = 8) ?(seed = 5) ~slots () =
  let host = Host.create () in
  let co = Co.create ?faults ?checkpoint_every ?nvram ~host ~m ~seed () in
  let (_ : Host.t) = Host.define_region host Trace.Scratch ~size:slots in
  (host, co)

let expect_tamper what f =
  match f () with
  | exception Co.Tamper_detected _ -> ()
  | _ -> Alcotest.failf "%s: expected Tamper_detected" what

let test_tamper_bit_flips () =
  (* A flip anywhere — nonce, ciphertext body, or trailing tag bytes —
     must be caught on the next read. *)
  List.iter
    (fun (what, pos_of) ->
      let host, co = scratch_co ~slots:2 () in
      Co.put co Trace.Scratch 0 "the quick brown tuple";
      let c = Host.raw_get host Trace.Scratch 0 in
      Host.tamper host Trace.Scratch 0 ~byte:(pos_of (String.length c));
      expect_tamper what (fun () -> Co.get co Trace.Scratch 0))
    [ ("nonce flip", fun _ -> 0); ("body flip", fun n -> n / 2); ("tag flip", fun n -> n - 1) ]

let test_tamper_truncation () =
  let host, co = scratch_co ~slots:2 () in
  Co.put co Trace.Scratch 0 "a tuple that will be cut short";
  let c = Host.raw_get host Trace.Scratch 0 in
  (* Shorter than nonce+tag: structurally invalid. *)
  Host.raw_set host Trace.Scratch 0 (String.sub c 0 10);
  expect_tamper "hard truncation" (fun () -> Co.get co Trace.Scratch 0);
  (* Structurally plausible but cut: authentication fails. *)
  Host.raw_set host Trace.Scratch 0 (String.sub c 0 (String.length c - 3));
  expect_tamper "soft truncation" (fun () -> Co.get co Trace.Scratch 0)

let test_tamper_stale_replay () =
  (* An authentic-but-superseded ciphertext served at its own slot: OCB
     alone accepts it; the epoch check must not. *)
  let host, co = scratch_co ~slots:2 () in
  Co.put co Trace.Scratch 0 "version one";
  let stale = Option.get (Host.peek host Trace.Scratch 0) in
  Co.put co Trace.Scratch 0 "version two";
  Host.raw_set host Trace.Scratch 0 stale;
  match Co.get co Trace.Scratch 0 with
  | exception Co.Tamper_detected msg ->
      Alcotest.(check bool) "names staleness" true (contains msg "stale")
  | _ -> Alcotest.fail "stale replay accepted"

let test_tamper_relocation () =
  let host, co = scratch_co ~slots:2 () in
  Co.put co Trace.Scratch 0 "left";
  Co.put co Trace.Scratch 1 "right";
  let c0 = Host.raw_get host Trace.Scratch 0 in
  let c1 = Host.raw_get host Trace.Scratch 1 in
  Host.raw_set host Trace.Scratch 0 c1;
  Host.raw_set host Trace.Scratch 1 c0;
  expect_tamper "relocated ciphertext" (fun () -> Co.get co Trace.Scratch 0)

let test_injected_corrupt_detected () =
  let inj = Injector.create (plan "corrupt@t=2") in
  let _host, co = scratch_co ~faults:inj ~slots:4 () in
  Co.put co Trace.Scratch 0 "aaaa";
  Co.put co Trace.Scratch 1 "bbbb";
  (* transfer 2 is the read of slot 0: the injector flips a bit first. *)
  expect_tamper "injected corrupt" (fun () -> Co.get co Trace.Scratch 0);
  Alcotest.(check int) "fired" 1 (counter (Injector.registry inj) "fault.scpu.corrupt")

let test_injected_replay_detected () =
  let inj = Injector.create (plan "replay@t=3") in
  let _host, co = scratch_co ~faults:inj ~slots:4 () in
  Co.put co Trace.Scratch 0 "first value";
  Co.put co Trace.Scratch 0 "second value";
  Alcotest.(check string) "clean read" "second value" (Co.get co Trace.Scratch 0);
  (* transfer 3 reads slot 0 again; the injector serves the stashed
     first-version ciphertext. *)
  expect_tamper "injected replay" (fun () -> Co.get co Trace.Scratch 0);
  Alcotest.(check int) "fired" 1 (counter (Injector.registry inj) "fault.scpu.replay")

(* --- Checkpoint / resume, coprocessor level --- *)

let value i = Printf.sprintf "slot-value-%04d" i

(* The deterministic computation both timelines run: 8 puts then 4 gets. *)
let drive co upto =
  let host = Co.host co in
  let (_ : Host.t) = Host.define_region host Trace.Scratch ~size:8 in
  for i = 0 to upto - 1 do
    Co.put co Trace.Scratch (i mod 8) (value i)
  done

let test_checkpoint_resume_direct () =
  let nvram = ref 0 in
  let host = Host.create () in
  let co = Co.create ~checkpoint_every:4 ~nvram ~host ~m:8 ~seed:5 () in
  let (_ : Host.t) = Host.define_region host Trace.Scratch ~size:8 in
  for i = 0 to 5 do
    Co.put co Trace.Scratch (i mod 8) (value i)
  done;
  Alcotest.(check bool) "checkpoint sealed" true (Host.has_checkpoint host);
  (* Coprocessor dies here; its volatile state is abandoned. *)
  let co2 = Co.resume ~checkpoint_every:4 ~nvram ~host ~m:8 ~seed:5 () in
  Alcotest.(check bool) "ghost replaying" true (Co.resuming co2);
  (* The rerun replays the same deterministic computation from scratch. *)
  drive co2 6;
  Alcotest.(check bool) "live again" false (Co.resuming co2);
  for i = 6 to 7 do
    Co.put co2 Trace.Scratch i (value i)
  done;
  for i = 0 to 7 do
    Alcotest.(check string) (Printf.sprintf "slot %d" i) (value i) (Co.get co2 Trace.Scratch i)
  done;
  (* Ghost ops left no trace: the post-crash view starts at the
     checkpointed transfer. *)
  let reg = Registry.create () in
  Co.observe co2 reg;
  Alcotest.(check int) "resume counted" 1 (counter reg "recovery.resumes");
  Alcotest.(check bool) "ghost ops surfaced" true (counter reg "recovery.ghost_ops" > 0)

let test_resume_without_checkpoint_rejected () =
  let host = Host.create () in
  match Co.resume ~nvram:(ref 0) ~host ~m:8 ~seed:5 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "resume without a checkpoint should be rejected"

let test_checkpoint_rollback_rejected () =
  let nvram = ref 0 in
  let host = Host.create () in
  let co = Co.create ~checkpoint_every:4 ~nvram ~host ~m:8 ~seed:5 () in
  let (_ : Host.t) = Host.define_region host Trace.Scratch ~size:8 in
  for i = 0 to 4 do
    Co.put co Trace.Scratch (i mod 8) (value i)
  done;
  (* v2 checkpoint (ops=4) is now sealed; keep a copy of its blob. *)
  let stale = Option.get (Host.peek host Trace.Checkpoint 0) in
  for i = 5 to 8 do
    Co.put co Trace.Scratch (i mod 8) (value i)
  done;
  (* v3 is sealed (ops=8).  A malicious host rolls the sealed blob back
     to v2 inside its recovery image. *)
  Host.raw_set host Trace.Checkpoint 0 stale;
  Host.save_checkpoint host;
  expect_tamper "version rollback" (fun () ->
      Co.resume ~checkpoint_every:4 ~nvram ~host ~m:8 ~seed:5 ())

(* --- Crash / resume through the service --- *)

let pred = P.equijoin2 "key" "key"

let variant ~data_seed ?(na = 8) ?(nb = 12) ?(matches = 9) ?(mult = 3) () =
  let rng = Rng.create data_seed in
  W.equijoin_pair rng ~na ~nb ~matches ~max_multiplicity:mult

let oracle_of ~data_seed =
  let a, b = variant ~data_seed () in
  Instance.oracle (Instance.create ~m:4 ~seed:77 ~predicate:pred [ a; b ])

let crash_config = { Service.m = 4; seed = 77; algorithm = Service.Alg5 }

let run_with_plan ~data_seed plan_str =
  let faults = Injector.create (plan plan_str) in
  let a, b = variant ~data_seed () in
  Service.execute_join ~faults ~max_resumes:4 crash_config ~predicate:pred [ a; b ]

let test_service_crash_resume () =
  let inst, report = run_with_plan ~data_seed:3 "crash@t=150;checkpoint@every=32" in
  Alcotest.(check int) "one resume" 1 (Instance.resumes inst);
  Alcotest.(check bool) "resumed from a sealed checkpoint" true
    (Host.has_checkpoint (Co.host (Instance.co inst)));
  Alcotest.(check bool) "answer = fault-free oracle" true
    (tuple_set report.Report.results = tuple_set (oracle_of ~data_seed:3));
  (* The banked pre-crash trace is part of the adversary's view. *)
  let clean = run_with_plan ~data_seed:3 "checkpoint@every=32" in
  let clean_len = Trace.length (Instance.extended_trace (fst clean)) in
  Alcotest.(check bool) "extended view longer than fault-free" true
    (Trace.length (Instance.extended_trace inst) > clean_len)

let test_service_crash_before_any_checkpoint () =
  (* Crash with no checkpoint interval armed: recovery is a rerun from
     scratch, still converging on the oracle answer. *)
  let inst, report = run_with_plan ~data_seed:3 "crash@t=9" in
  Alcotest.(check int) "one resume" 1 (Instance.resumes inst);
  Alcotest.(check bool) "no checkpoint existed" false
    (Host.has_checkpoint (Co.host (Instance.co inst)));
  Alcotest.(check bool) "answer = fault-free oracle" true
    (tuple_set report.Report.results = tuple_set (oracle_of ~data_seed:3))

let test_service_double_crash () =
  let inst, report =
    run_with_plan ~data_seed:3 "crash@t=60;crash@t=200;checkpoint@every=25"
  in
  Alcotest.(check int) "two resumes" 2 (Instance.resumes inst);
  Alcotest.(check bool) "answer = fault-free oracle" true
    (tuple_set report.Report.results = tuple_set (oracle_of ~data_seed:3))

let test_crash_exhausts_resume_budget () =
  let faults = Injector.create (plan "crash@t=9") in
  let a, b = variant ~data_seed:3 () in
  match Service.execute_join ~faults ~max_resumes:0 crash_config ~predicate:pred [ a; b ] with
  | exception Service.Join_crashed { transfer; _ } ->
      Alcotest.(check int) "crash point" 9 transfer
  | _ -> Alcotest.fail "expected Join_crashed"

let test_resume_join_completes_stashed_instance () =
  let faults = Injector.create (plan "crash@t=150;checkpoint@every=32") in
  let a, b = variant ~data_seed:3 () in
  match Service.execute_join ~faults crash_config ~predicate:pred [ a; b ] with
  | exception Service.Join_crashed { inst; _ } ->
      let _inst, report = Service.resume_join crash_config inst in
      Alcotest.(check bool) "answer = fault-free oracle" true
        (tuple_set report.Report.results = tuple_set (oracle_of ~data_seed:3))
  | _ -> Alcotest.fail "expected Join_crashed"

(* --- Privacy across crash-resume runs --- *)

let extended_trace_of ~data_seed plan =
  let inst, _report = run_with_plan ~data_seed plan in
  Instance.extended_trace inst

let test_extended_trace_privacy () =
  (* Definition 1/3 over the extended trace: same shape, same coprocessor
     seed, same fault plan, different data — the adversary's whole view
     (pre-crash prefix included) must be identical. *)
  let plan = "crash@t=150;checkpoint@every=32" in
  let traces = List.map (fun s -> [ extended_trace_of ~data_seed:s plan ]) [ 1; 2; 3; 4 ] in
  match Privacy.compare_extended traces with
  | Privacy.Indistinguishable -> ()
  | v -> Alcotest.failf "crash-resume runs distinguishable: %a" Privacy.pp_verdict v

let test_abort_prefix_input_independent () =
  (* When T detects tampering and aborts, the trace prefix the adversary
     forced out of it must not depend on the data either. *)
  let abort_trace ~data_seed =
    let faults = Injector.create (plan "corrupt@t=100") in
    let a, b = variant ~data_seed () in
    let inst = Instance.create ~faults ~m:4 ~seed:77 ~predicate:pred [ a; b ] in
    (match Algorithm5.run inst with
    | (_ : Report.t) -> Alcotest.fail "corruption went undetected"
    | exception Co.Tamper_detected _ -> ());
    Co.trace (Instance.co inst)
  in
  match Privacy.compare_traces (List.map (fun s -> abort_trace ~data_seed:s) [ 1; 2; 3; 4 ]) with
  | Privacy.Indistinguishable -> ()
  | v -> Alcotest.failf "abort prefixes distinguishable: %a" Privacy.pp_verdict v

let () =
  Alcotest.run "fault"
    [ ( "plan",
        [ Alcotest.test_case "roundtrip" `Quick test_plan_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_plan_rejects_garbage;
          Alcotest.test_case "random is seed-deterministic" `Quick test_plan_random_deterministic;
        ] );
      ( "injector",
        [ Alcotest.test_case "scpu events are one-shot" `Quick test_injector_scpu_one_shot;
          Alcotest.test_case "net skip/count windows" `Quick test_injector_net_window;
          Alcotest.test_case "recv timeout by call index" `Quick test_injector_recv_timeout;
        ] );
      ( "tamper",
        [ Alcotest.test_case "bit flips (nonce/body/tag)" `Quick test_tamper_bit_flips;
          Alcotest.test_case "truncation" `Quick test_tamper_truncation;
          Alcotest.test_case "stale same-slot replay" `Quick test_tamper_stale_replay;
          Alcotest.test_case "cross-slot relocation" `Quick test_tamper_relocation;
          Alcotest.test_case "injected corrupt" `Quick test_injected_corrupt_detected;
          Alcotest.test_case "injected replay" `Quick test_injected_replay_detected;
        ] );
      ( "checkpoint",
        [ Alcotest.test_case "resume rejoins the timeline" `Quick test_checkpoint_resume_direct;
          Alcotest.test_case "resume demands a checkpoint" `Quick
            test_resume_without_checkpoint_rejected;
          Alcotest.test_case "version rollback rejected" `Quick test_checkpoint_rollback_rejected;
        ] );
      ( "service-recovery",
        [ Alcotest.test_case "crash resumes to the oracle answer" `Quick
            test_service_crash_resume;
          Alcotest.test_case "crash before any checkpoint" `Quick
            test_service_crash_before_any_checkpoint;
          Alcotest.test_case "two crashes, two resumes" `Quick test_service_double_crash;
          Alcotest.test_case "resume budget exhaustion" `Quick test_crash_exhausts_resume_budget;
          Alcotest.test_case "resume_join completes a stash" `Quick
            test_resume_join_completes_stashed_instance;
        ] );
      ( "privacy",
        [ Alcotest.test_case "extended traces indistinguishable" `Quick
          test_extended_trace_privacy;
          Alcotest.test_case "abort prefix input-independent" `Quick
            test_abort_prefix_input_independent;
        ] );
    ]
