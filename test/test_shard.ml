(* Sharded multi-coprocessor joins (lib/shard): the oblivious merge
   network, the replicate/hash partitioner, the coordinator over both
   backends and over the wire, Definition 1/3 property tests for the
   promoted slice runners, kill-one-shard chaos, and the load-imbalance
   metrics. *)

module Sharded = Ppj_core.Sharded
module Instance = Ppj_core.Instance
module Privacy = Ppj_core.Privacy
module Service = Ppj_core.Service
module Co = Ppj_scpu.Coprocessor
module Ch = Ppj_scpu.Channel
module W = Ppj_relation.Workload
module P = Ppj_relation.Predicate
module T = Ppj_relation.Tuple
module Value = Ppj_relation.Value
module Relation = Ppj_relation.Relation
module Schema = Ppj_relation.Schema
module Rng = Ppj_crypto.Rng
module Registry = Ppj_obs.Registry
module Counter = Ppj_obs.Counter
module Histogram = Ppj_obs.Histogram
module Par = Ppj_parallel.Parallel
module Server = Ppj_net.Server
module Transport = Ppj_net.Transport
module Client = Ppj_net.Client
module Wire = Ppj_net.Wire
module Merge = Ppj_shard.Merge
module Partitioner = Ppj_shard.Partitioner
module Shards = Ppj_shard.Shards
module Metrics = Ppj_shard.Metrics
module Coordinator = Ppj_shard.Coordinator
module Chaos = Ppj_shard.Chaos
module Domains_compat = Ppj_shard.Domains_compat

let pred = P.equijoin2 "key" "key"
let tuple_set l = List.sort compare (List.map (fun t -> Format.asprintf "%a" T.pp t) l)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1)) in
  n = 0 || go 0

let workload ?(seed = 11) () =
  let rng = Rng.create seed in
  W.equijoin_pair rng ~na:12 ~nb:18 ~matches:14 ~max_multiplicity:3

let oracle_of rels = Instance.oracle (Instance.create ~m:4 ~seed:1 ~predicate:pred rels)

(* --- merge ------------------------------------------------------------ *)

let test_merge_compacts_stable () =
  let streams = [ [ Some 1; None; Some 2 ]; []; [ None; Some 3 ] ] in
  let reals, stats = Merge.run ~pad:None ~is_real:Option.is_some streams in
  Alcotest.(check (list int)) "reals, shard order" [ 1; 2; 3 ] (List.filter_map Fun.id reals);
  (* 3 streams padded to max length 3 = 9 slots, network over 16 *)
  Alcotest.(check int) "slots" 9 stats.Merge.slots;
  Alcotest.(check bool) "comparators counted" true (stats.Merge.comparators > 0)

let test_merge_schedule_is_shape_only () =
  (* Two opposite distributions of 4 reals over 3 shards: identical
     slot and comparator counts — the schedule can't see the split. *)
  let d1 = [ [ Some 1; Some 2; Some 3; Some 4 ]; [ None; None ]; [ None ] ] in
  let d2 = [ [ None; None; None; None ]; [ Some 9; Some 8 ]; [ Some 7 ] ] in
  let r1, s1 = Merge.run ~pad:None ~is_real:Option.is_some d1 in
  let r2, s2 = Merge.run ~pad:None ~is_real:Option.is_some d2 in
  Alcotest.(check bool) "same stats" true (s1 = s2);
  Alcotest.(check (list int)) "d1 reals" [ 1; 2; 3; 4 ] (List.filter_map Fun.id r1);
  Alcotest.(check (list int)) "d2 reals" [ 9; 8; 7 ] (List.filter_map Fun.id r2)

let test_merge_all_pads_and_empty () =
  let reals, stats = Merge.run ~pad:None ~is_real:Option.is_some [ [ None ]; [ None ] ] in
  Alcotest.(check int) "no reals" 0 (List.length reals);
  Alcotest.(check int) "two slots" 2 stats.Merge.slots;
  let reals, stats = Merge.run ~pad:None ~is_real:Option.is_some [ []; [] ] in
  Alcotest.(check int) "empty streams ok" 0 (List.length reals);
  Alcotest.(check int) "zero slots" 0 stats.Merge.slots

(* --- partitioner ------------------------------------------------------ *)

let zipf_pair seed =
  let rng = Rng.create seed in
  let a = W.zipf rng ~name:"a" ~n:20 ~key_domain:6 ~theta:1.2 in
  let b = W.zipf rng ~name:"b" ~n:15 ~key_domain:6 ~theta:1.2 in
  (a, b)

(* Hash partitioning needs a roughly flat key histogram to stay under
   its public bound — skew is exactly what the overflow refusal is for. *)
let uniform_pair seed =
  let rng = Rng.create seed in
  let a = W.uniform rng ~name:"a" ~n:24 ~key_domain:40 in
  let b = W.uniform rng ~name:"b" ~n:18 ~key_domain:40 in
  (a, b)

let test_replicate_plan () =
  let a, b = workload () in
  match Partitioner.plan Partitioner.Replicate ~p:3 [ a; b ] with
  | Error e -> Alcotest.fail e
  | Ok inputs ->
      Alcotest.(check int) "three shards" 3 (Array.length inputs);
      Array.iteri
        (fun k (i : Partitioner.shard_input) ->
          Alcotest.(check int) "shard index" k i.Partitioner.shard;
          Alcotest.(check int) "no pads" 0 i.Partitioner.padded;
          Alcotest.(check int) "full |A|" (Relation.cardinality a)
            (Relation.cardinality (List.nth i.Partitioner.relations 0)))
        inputs

let test_hash_buckets_hit_public_bound () =
  let a, b = uniform_pair 3 in
  let p = 3 and slack = 2.0 in
  match Partitioner.plan (Partitioner.Hash { key = "key"; slack }) ~p [ a; b ] with
  | Error e -> Alcotest.fail e
  | Ok inputs ->
      (* Every shard's relation sits exactly at the public bound: bucket
         sizes reveal nothing beyond (n, p, slack). *)
      Array.iter
        (fun (i : Partitioner.shard_input) ->
          List.iter2
            (fun rel n ->
              Alcotest.(check int) "bucket at bound"
                (Partitioner.bound ~slack ~n ~p)
                (Relation.cardinality rel))
            i.Partitioner.relations
            [ Relation.cardinality a; Relation.cardinality b ])
        inputs

let test_hash_union_equals_oracle () =
  (* No spurious matches from the pads, no lost matches from bucketing:
     the union over shards of each shard's local join is exactly the
     full join. *)
  List.iter
    (fun seed ->
      let a, b = uniform_pair seed in
      let want = tuple_set (oracle_of [ a; b ]) in
      match Partitioner.plan (Partitioner.Hash { key = "key"; slack = 2.5 }) ~p:3 [ a; b ] with
      | Error e -> Alcotest.fail e
      | Ok inputs ->
          let got =
            Array.to_list inputs
            |> List.concat_map (fun (i : Partitioner.shard_input) ->
                   oracle_of i.Partitioner.relations)
          in
          Alcotest.(check (list string)) "union = oracle" want (tuple_set got))
    [ 1; 2; 7 ]

let test_hash_overflow_is_typed_refusal () =
  let schema = W.keyed_schema () in
  let one_key =
    Relation.make ~name:"hot" schema
      (List.init 10 (fun i -> T.make schema [ Value.Int i; Value.Int 42; Value.Str "" ]))
  in
  match Partitioner.plan (Partitioner.Hash { key = "key"; slack = 1.0 }) ~p:3 [ one_key ] with
  | Ok _ -> Alcotest.fail "skewed bucket should overflow the bound"
  | Error e -> Alcotest.(check bool) "overflow named" true (contains ~sub:"overflow" e)

let test_hash_bad_key_rejected () =
  let a, _ = workload () in
  (match Partitioner.plan (Partitioner.Hash { key = "nope"; slack = 2. }) ~p:2 [ a ] with
  | Ok _ -> Alcotest.fail "missing key accepted"
  | Error e -> Alcotest.(check bool) "names the key" true (contains ~sub:"nope" e));
  match Partitioner.plan (Partitioner.Hash { key = "info"; slack = 2. }) ~p:2 [ a ] with
  | Ok _ -> Alcotest.fail "string key accepted"
  | Error e -> Alcotest.(check bool) "integer required" true (contains ~sub:"integer" e)

(* --- Definition 1/3 for the sharded slices (satellite) ---------------- *)

let runs_per_property = 20

type shape = { na : int; nb : int; mult : int; matches : int; s1 : int; s2 : int }

let shape_gen =
  let open QCheck.Gen in
  let* na = int_range 4 9 in
  let* nb = int_range 4 12 in
  let* mult = int_range 1 3 in
  let* matches = int_range 1 (min nb (na * mult)) in
  let* s1 = int_range 0 9999 in
  let* s2 = int_range 0 9999 in
  let s2 = if s2 = s1 then s2 + 10000 else s2 in
  return { na; nb; mult; matches; s1; s2 }

let pp_shape sh =
  Printf.sprintf "{na=%d; nb=%d; mult=%d; matches=%d; s1=%d; s2=%d}" sh.na sh.nb sh.mult
    sh.matches sh.s1 sh.s2

let shape_arb = QCheck.make ~print:pp_shape shape_gen

(* The union of per-shard traces for one database: shard k runs its
   slice on a fresh coprocessor holding the full relations, exactly as
   a replicate shard server would.  The coprocessor seed is fixed —
   Definition 1 quantifies over the data only. *)
let shard_traces ~p run sh ~data_seed =
  let rng = Rng.create data_seed in
  let a, b =
    W.equijoin_pair rng ~na:sh.na ~nb:sh.nb ~matches:sh.matches ~max_multiplicity:sh.mult
  in
  let s = Instance.oracle_size (Instance.create ~m:3 ~seed:1234 ~predicate:pred [ a; b ]) in
  List.init p (fun k ->
      let inst = Instance.create ~m:3 ~seed:1234 ~predicate:pred [ a; b ] in
      run inst ~k ~s;
      Co.trace (Instance.co inst))

let sharded_indistinguishable ~p run sh =
  let runs = List.map (fun s -> shard_traces ~p run sh ~data_seed:s) [ sh.s1; sh.s2 ] in
  match Privacy.compare_sharded runs with
  | Privacy.Indistinguishable -> true
  | Privacy.Distinguishable _ -> false

let property_case ~qcheck_seed name run =
  let cell =
    QCheck.Test.make_cell ~count:runs_per_property ~name shape_arb (fun sh ->
        sharded_indistinguishable ~p:3 run sh)
  in
  Alcotest.test_case name `Quick (fun () ->
      QCheck.Test.check_cell_exn ~rand:(Random.State.make [| qcheck_seed |]) cell)

let sharded_properties =
  [ property_case ~qcheck_seed:41 "sharded algorithm 4" (fun inst ~k ~s ->
        Sharded.alg4 inst ~k ~p:3 ~s);
    property_case ~qcheck_seed:42 "sharded algorithm 5" (fun inst ~k ~s ->
        Sharded.alg5 inst ~k ~p:3 ~s);
    property_case ~qcheck_seed:43 "sharded algorithm 6" (fun inst ~k ~s ->
        Sharded.alg6 inst ~k ~p:3 ~s ~shared_seed:(Sharded.shared_seed 1234) ~eps:1e-12);
    property_case ~qcheck_seed:44 "sharded algorithm 8" (fun inst ~k ~s:_ ->
        Sharded.alg8 inst ~k ~p:3 ~attr_a:"key" ~attr_b:"key")
  ]

(* Deterministic pair: same shape, same S = 3, but the matches all live
   in shard 0's slice for [b_lo] and in shard 1's for [b_hi]. *)
let concentrated () =
  let schema = W.keyed_schema () in
  let mk name keys =
    Relation.make ~name schema
      (List.mapi (fun i k -> T.make schema [ Value.Int i; Value.Int k; Value.Str "" ]) keys)
  in
  let a = mk "a" [ 0; 1; 2; 3 ] in
  let b_lo = mk "b" [ 0; 0; 0; 9 ] in
  let b_hi = mk "b" [ 3; 3; 3; 9 ] in
  (a, b_lo, b_hi)

let leaky_traces ?(leaky = true) b_choice =
  let a, b_lo, b_hi = concentrated () in
  let b = if b_choice = 0 then b_lo else b_hi in
  let s = Instance.oracle_size (Instance.create ~m:3 ~seed:1234 ~predicate:pred [ a; b ]) in
  List.init 2 (fun k ->
      let inst = Instance.create ~m:3 ~seed:1234 ~predicate:pred [ a; b ] in
      Sharded.alg4 ~leaky inst ~k ~p:2 ~s;
      Co.trace (Instance.co inst))

let test_leaky_negative_control () =
  (* With mu = local s_k the shard-0 trace sees 3 matches vs 0: the
     verdict must name the leaking shard. *)
  match Privacy.compare_sharded [ leaky_traces 0; leaky_traces 1 ] with
  | Privacy.Indistinguishable -> Alcotest.fail "leaky slices escaped detection"
  | Privacy.Distinguishable { detail; _ } ->
      Alcotest.(check bool)
        (Printf.sprintf "names shard 0 (got %s)" detail)
        true
        (contains ~sub:"shard 0" detail)

let test_public_budget_heals_the_leak () =
  (* Same pair under the public min(slice, S) budget: indistinguishable —
     this is precisely what the promoted runners fix. *)
  match
    Privacy.compare_sharded [ leaky_traces ~leaky:false 0; leaky_traces ~leaky:false 1 ]
  with
  | Privacy.Indistinguishable -> ()
  | Privacy.Distinguishable d ->
      Alcotest.fail (Format.asprintf "%a" Privacy.pp_verdict (Privacy.Distinguishable d))

let test_shard_count_mismatch_distinguishable () =
  match Privacy.compare_sharded [ leaky_traces ~leaky:false 0; [ List.hd (leaky_traces ~leaky:false 1) ] ] with
  | Privacy.Distinguishable { detail; _ } ->
      Alcotest.(check bool) "counts named" true (contains ~sub:"shard counts differ" detail)
  | Privacy.Indistinguishable -> Alcotest.fail "differing arity slipped through"

(* --- coordinator, in-process backend ---------------------------------- *)

let local_config ?(p = 2) ?(strategy = Partitioner.Replicate) inner =
  { Coordinator.p; m = 4; seed = 5; inner; strategy }

let check_local_correct name ?strategy inner ps () =
  let a, b = workload () in
  let want = tuple_set (oracle_of [ a; b ]) in
  List.iter
    (fun p ->
      match
        Coordinator.run_local ~backend:Coordinator.Sequential
          (local_config ~p ?strategy inner)
          ~predicate:pred [ a; b ]
      with
      | Error e -> Alcotest.fail (Printf.sprintf "%s p=%d: %s" name p e)
      | Ok o ->
          Alcotest.(check (list string))
            (Printf.sprintf "%s p=%d = oracle" name p)
            want
            (tuple_set o.Coordinator.results))
    ps

let test_local_replicate_alg4 = check_local_correct "alg4" Service.Alg4 [ 1; 2; 3; 4; 8 ]
let test_local_replicate_alg5 = check_local_correct "alg5" Service.Alg5 [ 1; 2; 3; 4; 8 ]

let test_local_replicate_alg6 =
  check_local_correct "alg6" (Service.Alg6 { eps = 1e-9 }) [ 1; 2; 3; 4 ]

let test_local_replicate_alg8 =
  check_local_correct "alg8"
    (Service.Alg8 { attr_a = "key"; attr_b = "key" })
    [ 1; 2; 3; 4; 8 ]

let test_local_hash_alg4 =
  check_local_correct "hash alg4"
    ~strategy:(Partitioner.Hash { key = "key"; slack = 2.5 })
    Service.Alg4 [ 1; 2; 3 ]

let test_local_hash_alg6 =
  check_local_correct "hash alg6"
    ~strategy:(Partitioner.Hash { key = "key"; slack = 2.5 })
    (Service.Alg6 { eps = 1e-9 })
    [ 1; 2; 3 ]

let test_alg5_hash_rejected () =
  let a, b = workload () in
  match
    Coordinator.run_local
      (local_config ~strategy:(Partitioner.Hash { key = "key"; slack = 2. }) Service.Alg5)
      ~predicate:pred [ a; b ]
  with
  | Ok _ -> Alcotest.fail "Alg5 x Hash must be rejected"
  | Error e -> Alcotest.(check bool) "names Algorithm 5" true (contains ~sub:"Algorithm 5" e)

let test_alg8_hash_rejected () =
  (* Same reason as Algorithm 5: result-rank slices over data-dependent
     local output sizes. *)
  let a, b = workload () in
  match
    Coordinator.run_local
      (local_config
         ~strategy:(Partitioner.Hash { key = "key"; slack = 2. })
         (Service.Alg8 { attr_a = "key"; attr_b = "key" }))
      ~predicate:pred [ a; b ]
  with
  | Ok _ -> Alcotest.fail "Alg8 x Hash must be rejected"
  | Error e -> Alcotest.(check bool) "says replicate" true (contains ~sub:"replicate" e)

let test_bad_inner_rejected () =
  let a, b = workload () in
  match Coordinator.run_local (local_config (Service.Alg1 { n = 3 })) ~predicate:pred [ a; b ] with
  | Ok _ -> Alcotest.fail "Alg1 inner accepted"
  | Error e -> Alcotest.(check bool) "typed" true (contains ~sub:"inner algorithm" e)

let test_domains_matches_sequential () =
  let a, b = workload () in
  let run backend =
    match
      Coordinator.run_local ~backend (local_config ~p:4 Service.Alg4) ~predicate:pred [ a; b ]
    with
    | Error e -> Alcotest.fail e
    | Ok o -> o
  in
  let seq = run Coordinator.Sequential in
  let dom = run Coordinator.Domains in
  Alcotest.(check (list string)) "same results" (tuple_set seq.Coordinator.results)
    (tuple_set dom.Coordinator.results);
  Alcotest.(check bool) "same per-shard transfers" true
    (seq.Coordinator.per_shard_transfers = dom.Coordinator.per_shard_transfers);
  Alcotest.(check string) "sequential backend reported" "sequential" seq.Coordinator.backend;
  let expect = if Domains_compat.available then "domains" else "sequential" in
  Alcotest.(check string) "domains backend reported" expect dom.Coordinator.backend

(* Regression for the Domains-backend data races: concurrent first-touch
   of a schedule size must build it exactly once with every caller
   handed the same published array (losers of the publish race adopt the
   winner's build), and registry counters hammered from parallel jobs
   must not lose increments.  On 4.14 Domains_compat degrades to a
   sequential map and these become plain memoization/accounting checks. *)
let test_parallel_schedule_cache () =
  let module Bitonic = Ppj_oblivious.Bitonic in
  let module Oddeven = Ppj_oblivious.Oddeven in
  let check_network name schedule builds n =
    let before = builds () in
    let results = Domains_compat.parallel_map (fun () -> schedule n) (Array.make 8 ()) in
    Alcotest.(check int) (name ^ ": built once") (before + 1) (builds ());
    Array.iter
      (fun s -> Alcotest.(check bool) (name ^ ": one shared array") true (s == results.(0)))
      results
  in
  (* 4096 is fresh: nothing else in this binary sorts a region that big. *)
  check_network "bitonic" Bitonic.schedule Bitonic.schedule_builds 4096;
  check_network "odd-even" Oddeven.schedule Oddeven.schedule_builds 4096

let test_parallel_registry_counters () =
  let registry = Registry.create () in
  let jobs = 8 and per_job = 1000 in
  let (_ : unit array) =
    Domains_compat.parallel_map
      (fun k ->
        for i = 1 to per_job do
          Counter.incr (Registry.counter registry "race.counter");
          Registry.set_gauge
            ~labels:[ ("job", string_of_int k) ]
            registry "race.gauge" (float_of_int i)
        done)
      (Array.init jobs (fun k -> k))
  in
  Alcotest.(check int) "no lost increments" (jobs * per_job)
    (Counter.value (Registry.counter registry "race.counter"))

let test_local_speedup_accounting () =
  let a, b = workload () in
  match
    Coordinator.run_local ~backend:Coordinator.Sequential (local_config ~p:4 Service.Alg4)
      ~predicate:pred [ a; b ]
  with
  | Error e -> Alcotest.fail e
  | Ok o ->
      let sum = Array.fold_left ( + ) 0 o.Coordinator.per_shard_transfers in
      let mx = Array.fold_left max 1 o.Coordinator.per_shard_transfers in
      Alcotest.(check (float 1e-6)) "sum = speedup * max" (float_of_int sum)
        (o.Coordinator.speedup *. float_of_int mx);
      Alcotest.(check bool) "p=4 speeds up" true (o.Coordinator.speedup > 1.5);
      Alcotest.(check bool) "merge slots cover shards" true
        (o.Coordinator.merge.Merge.slots > 0)

let test_hash_reports_padding () =
  let a, b = uniform_pair 5 in
  match
    Coordinator.run_local ~backend:Coordinator.Sequential
      (local_config ~p:3 ~strategy:(Partitioner.Hash { key = "key"; slack = 2.5 }) Service.Alg4)
      ~predicate:pred [ a; b ]
  with
  | Error e -> Alcotest.fail e
  | Ok o ->
      Alcotest.(check bool) "pads counted" true (o.Coordinator.padded > 0);
      Alcotest.(check (list string)) "still the oracle" (tuple_set (oracle_of [ a; b ]))
        (tuple_set o.Coordinator.results)

(* --- coordinator over the wire ---------------------------------------- *)

let mac_key = "test-shard-mac-key"
let schema = W.keyed_schema ()

let contract =
  { Ch.contract_id = "shard-test-contract";
    providers = [ "alice"; "bob" ];
    recipient = "carol";
    predicate = "eq(key,key)";
  }

let no_sleep = { Client.default_config with sleep = ignore; recv_timeout = 0.01 }

let wire_config inner = { Coordinator.p = 2; m = 4; seed = 7; inner; strategy = Partitioner.Replicate }

let wire_setup ?(connect_hook = fun _ t -> t) () =
  let servers = Array.init 2 (fun _ -> Server.create ~mac_key ~seed:5 ()) in
  let shards =
    Shards.create ~p:2 ~connect:(fun k -> Ok (connect_hook k (Transport.loopback servers.(k))))
  in
  shards

let run_wire ?(shard_attempts = 1) ?metrics shards inner =
  let a, b = workload () in
  Coordinator.run_wire ?metrics ~client_config:no_sleep ~shard_attempts ~shards ~seed:23
    ~mac_key ~contract
    ~providers:[ ("alice", schema, a); ("bob", schema, b) ]
    (wire_config inner)

let test_wire_matches_oracle () =
  List.iter
    (fun inner ->
      let shards = wire_setup () in
      match run_wire shards inner with
      | Error e -> Alcotest.fail e
      | Ok o ->
          let a, b = workload () in
          Alcotest.(check (list string)) "wire join = oracle" (tuple_set (oracle_of [ a; b ]))
            (tuple_set o.Coordinator.tuples);
          Alcotest.(check int) "two shards reported" 2
            (Array.length o.Coordinator.wire_per_shard_transfers);
          Alcotest.(check bool) "schema delivered" true (Schema.fields o.Coordinator.schema <> []);
          Alcotest.(check int) "no retries on a clean run" 0 o.Coordinator.shard_retries;
          Alcotest.(check int) "both shards healthy" 2 (Shards.healthy_count shards))
    [ Service.Alg4; Service.Alg5; Service.Alg6 { eps = 1e-9 } ]

let test_wire_p_mismatch () =
  let shards = wire_setup () in
  let a, b = workload () in
  match
    Coordinator.run_wire ~client_config:no_sleep ~shards ~seed:23 ~mac_key ~contract
      ~providers:[ ("alice", schema, a); ("bob", schema, b) ]
      { (wire_config Service.Alg4) with Coordinator.p = 3 }
  with
  | Ok _ -> Alcotest.fail "p mismatch accepted"
  | Error e -> Alcotest.(check bool) "arity error" true (contains ~sub:"arity" e)

let test_wire_hash_rejected () =
  let shards = wire_setup () in
  let a, b = workload () in
  match
    Coordinator.run_wire ~client_config:no_sleep ~shards ~seed:23 ~mac_key ~contract
      ~providers:[ ("alice", schema, a); ("bob", schema, b) ]
      { (wire_config Service.Alg4) with
        Coordinator.strategy = Partitioner.Hash { key = "key"; slack = 2. }
      }
  with
  | Ok _ -> Alcotest.fail "hash over the wire accepted"
  | Error e -> Alcotest.(check bool) "in-process only" true (contains ~sub:"in-process" e)

let test_wire_kill_is_typed_refusal () =
  (* Shard 1's transport dies after a few sends on every dial: with one
     attempt the coordinator must refuse with the typed prefix, never
     deliver a partial join. *)
  let shards =
    wire_setup
      ~connect_hook:(fun k t -> if k = 1 then fst (Transport.fused ~after_sends:3 t) else t)
      ()
  in
  match run_wire shards Service.Alg5 with
  | Ok _ -> Alcotest.fail "killed shard yielded a result"
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "typed refusal (got %s)" e)
        true
        (contains ~sub:"shard-unavailable: shard 1:" e);
      (match Shards.health shards 1 with
      | Shards.Unhealthy _ -> ()
      | Shards.Healthy -> Alcotest.fail "victim still marked healthy");
      Alcotest.(check bool) "failure counted" true (Shards.failures shards 1 > 0)

let test_wire_retry_survives_kill () =
  (* The fuse blows only on shard 1's first dial — the coordinator's
     second attempt reaches the restarted shard and completes. *)
  let dials = ref 0 in
  let shards =
    wire_setup
      ~connect_hook:(fun k t ->
        if k = 1 then begin
          incr dials;
          if !dials = 1 then fst (Transport.fused ~after_sends:3 t) else t
        end
        else t)
      ()
  in
  match run_wire ~shard_attempts:2 shards Service.Alg5 with
  | Error e -> Alcotest.fail ("retry should have recovered: " ^ e)
  | Ok o ->
      let a, b = workload () in
      Alcotest.(check (list string)) "recovered join = oracle" (tuple_set (oracle_of [ a; b ]))
        (tuple_set o.Coordinator.tuples);
      Alcotest.(check bool) "a retry happened" true (o.Coordinator.shard_retries >= 1)

(* --- wire codec for the sharded algorithm ----------------------------- *)

let test_sharded_config_roundtrip () =
  List.iter
    (fun inner ->
      let cfg =
        { Service.m = 4; seed = 7; algorithm = Service.Sharded { k = 1; p = 3; inner } }
      in
      match Wire.config_of_string (Wire.config_to_string cfg) with
      | Ok c -> Alcotest.(check bool) "config roundtrips" true (c = cfg)
      | Error e -> Alcotest.fail e)
    [ Service.Alg4;
      Service.Alg5;
      Service.Alg6 { eps = 1e-7 };
      Service.Alg8 { attr_a = "key"; attr_b = "key" };
      Service.Auto { max_eps = 1e-6 }
    ]

let test_nested_sharded_rejected () =
  let cfg =
    { Service.m = 4;
      seed = 7;
      algorithm =
        Service.Sharded { k = 0; p = 2; inner = Service.Sharded { k = 0; p = 2; inner = Service.Alg4 } };
    }
  in
  match Wire.config_of_string (Wire.config_to_string cfg) with
  | Ok _ -> Alcotest.fail "nested sharded decoded"
  | Error e -> Alcotest.(check bool) "nested named" true (contains ~sub:"nested" e)

let test_shard_unavailable_code_roundtrip () =
  let msg = Wire.Error { code = Wire.Shard_unavailable; message = "shard 1 gone" } in
  (match Wire.of_frame (Wire.to_frame msg) with
  | Ok m -> Alcotest.(check bool) "error roundtrips" true (m = msg)
  | Error e -> Alcotest.fail e);
  Alcotest.(check string) "string form" "shard-unavailable"
    (Wire.error_code_to_string Wire.Shard_unavailable)

let test_sharded_algorithm_name () =
  Alcotest.(check string) "name carries k/p" "alg5[1/3]"
    (Service.algorithm_name (Service.Sharded { k = 1; p = 3; inner = Service.Alg5 }))

(* --- chaos: kill one shard mid-join ----------------------------------- *)

let test_chaos_soak () =
  let registry = Registry.create () in
  let runs = Chaos.soak ~registry ~seed0:1 ~runs:45 () in
  List.iter
    (fun (r : Chaos.run) ->
      if not (Chaos.safe r) then
        Alcotest.fail
          (Printf.sprintf "seed %d (victim %d, killed %b): %s" r.Chaos.seed r.Chaos.victim
             r.Chaos.killed
             (Chaos.outcome_to_string r.Chaos.outcome)))
    runs;
  let count pred = List.length (List.filter pred runs) in
  let correct = count (fun r -> r.Chaos.outcome = Chaos.Correct) in
  let refused = count (fun r -> match r.Chaos.outcome with Chaos.Refused _ -> true | _ -> false) in
  Alcotest.(check bool) "some runs survive" true (correct > 0);
  Alcotest.(check bool) "some runs refuse (typed)" true (refused > 0);
  (* the checkpoint/resume path: a coprocessor crashed on a shard server
     and the join still completed correctly *)
  let resumed = count (fun r -> r.Chaos.crashes > 0 && r.Chaos.outcome = Chaos.Correct) in
  Alcotest.(check bool) "crash-resume produced correct joins" true (resumed > 0);
  let retried = count (fun r -> r.Chaos.retries > 0) in
  Alcotest.(check bool) "coordinator retries exercised" true (retried > 0);
  Alcotest.(check int) "registry counted every run" 45
    (Counter.value (Registry.counter registry "shard.chaos.runs"))

(* --- load imbalance metrics (satellite) ------------------------------- *)

let summary_of registry name =
  match Histogram.summary (Registry.histogram registry name) with
  | Some s -> s
  | None -> Alcotest.fail (name ^ " histogram is empty")

let test_parallel_load_balanced_under_zipf () =
  (* Replicate slicing is shape-driven: even a Zipf-skewed key
     distribution must keep parallel.co.load flat. *)
  let a, b = zipf_pair 9 in
  let o = Par.alg4 ~p:4 ~m:4 ~seed:5 ~predicate:pred [ a; b ] in
  let registry = Registry.create () in
  Par.observe o registry;
  let s = summary_of registry "parallel.co.load" in
  Alcotest.(check int) "one sample per coprocessor" 4 s.Histogram.count;
  Alcotest.(check bool) "p95 <= max" true (s.Histogram.p95 <= s.Histogram.max);
  Alcotest.(check bool) "balanced: max < 3 * min" true (s.Histogram.max < 3. *. s.Histogram.min)

let test_parallel_leaky_skew_is_visible () =
  (* Negative control: with the leaky mu = s_k budget, a workload whose
     matches all sit in one slice shows up in the histogram spread. *)
  let a, b_lo, _ = concentrated () in
  let o = Par.alg4 ~leaky:true ~p:2 ~m:3 ~seed:5 ~predicate:pred [ a; b_lo ] in
  let leaky_reg = Registry.create () in
  Par.observe o leaky_reg;
  let s = summary_of leaky_reg "parallel.co.load" in
  Alcotest.(check bool) "skew visible: max > min" true (s.Histogram.max > s.Histogram.min);
  let o = Par.alg4 ~p:2 ~m:3 ~seed:5 ~predicate:pred [ a; b_lo ] in
  let public_reg = Registry.create () in
  Par.observe o public_reg;
  let s = summary_of public_reg "parallel.co.load" in
  Alcotest.(check (float 1e-9)) "public budget flattens it" s.Histogram.min s.Histogram.max

let test_shard_load_histogram () =
  let a, b = zipf_pair 9 in
  let metrics = Metrics.create () in
  match
    Coordinator.run_local ~metrics ~backend:Coordinator.Sequential
      (local_config ~p:4 Service.Alg4) ~predicate:pred [ a; b ]
  with
  | Error e -> Alcotest.fail e
  | Ok o ->
      let registry = Metrics.registry metrics in
      let s = summary_of registry "shard.co.load" in
      Alcotest.(check int) "one sample per shard" 4 s.Histogram.count;
      Alcotest.(check bool) "p95 <= max" true (s.Histogram.p95 <= s.Histogram.max);
      Alcotest.(check bool) "balanced under zipf" true (s.Histogram.max < 3. *. s.Histogram.min);
      Alcotest.(check int) "total transfers counted"
        (Array.fold_left ( + ) 0 o.Coordinator.per_shard_transfers)
        (Counter.value (Registry.counter registry "shard.transfers.total"));
      Alcotest.(check int) "all shards completed" 4
        (Counter.value (Registry.counter registry "shard.co.completed"))

let test_wire_metrics () =
  let shards = wire_setup () in
  let metrics = Metrics.create () in
  match run_wire ~metrics shards Service.Alg4 with
  | Error e -> Alcotest.fail e
  | Ok _ ->
      let registry = Metrics.registry metrics in
      let s = summary_of registry "shard.co.load" in
      Alcotest.(check int) "both shards observed" 2 s.Histogram.count

(* ---------------------------------------------------------------------- *)

let () =
  Alcotest.run "shard"
    [ ( "merge",
        [ Alcotest.test_case "compacts stable" `Quick test_merge_compacts_stable;
          Alcotest.test_case "schedule is shape-only" `Quick test_merge_schedule_is_shape_only;
          Alcotest.test_case "all pads / empty" `Quick test_merge_all_pads_and_empty
        ] );
      ( "partitioner",
        [ Alcotest.test_case "replicate plan" `Quick test_replicate_plan;
          Alcotest.test_case "hash buckets at public bound" `Quick
            test_hash_buckets_hit_public_bound;
          Alcotest.test_case "hash union = oracle" `Quick test_hash_union_equals_oracle;
          Alcotest.test_case "hash overflow refused" `Quick test_hash_overflow_is_typed_refusal;
          Alcotest.test_case "hash bad key refused" `Quick test_hash_bad_key_rejected
        ] );
      ( "definition 1/3",
        sharded_properties
        @ [ Alcotest.test_case "leaky negative control" `Quick test_leaky_negative_control;
            Alcotest.test_case "public budget heals the leak" `Quick
              test_public_budget_heals_the_leak;
            Alcotest.test_case "shard count mismatch" `Quick
              test_shard_count_mismatch_distinguishable
          ] );
      ( "coordinator local",
        [ Alcotest.test_case "replicate alg4 = oracle" `Quick test_local_replicate_alg4;
          Alcotest.test_case "replicate alg5 = oracle" `Quick test_local_replicate_alg5;
          Alcotest.test_case "replicate alg6 = oracle" `Quick test_local_replicate_alg6;
          Alcotest.test_case "replicate alg8 = oracle" `Quick test_local_replicate_alg8;
          Alcotest.test_case "hash alg4 = oracle" `Quick test_local_hash_alg4;
          Alcotest.test_case "hash alg6 = oracle" `Quick test_local_hash_alg6;
          Alcotest.test_case "alg5 x hash rejected" `Quick test_alg5_hash_rejected;
          Alcotest.test_case "alg8 x hash rejected" `Quick test_alg8_hash_rejected;
          Alcotest.test_case "bad inner rejected" `Quick test_bad_inner_rejected;
          Alcotest.test_case "domains = sequential" `Quick test_domains_matches_sequential;
          Alcotest.test_case "speedup accounting" `Quick test_local_speedup_accounting;
          Alcotest.test_case "hash padding reported" `Quick test_hash_reports_padding
        ] );
      ( "coordinator wire",
        [ Alcotest.test_case "2-shard join = oracle" `Quick test_wire_matches_oracle;
          Alcotest.test_case "p mismatch refused" `Quick test_wire_p_mismatch;
          Alcotest.test_case "hash refused over wire" `Quick test_wire_hash_rejected;
          Alcotest.test_case "kill -> typed refusal" `Quick test_wire_kill_is_typed_refusal;
          Alcotest.test_case "retry survives kill" `Quick test_wire_retry_survives_kill
        ] );
      ( "wire codec",
        [ Alcotest.test_case "sharded config roundtrip" `Quick test_sharded_config_roundtrip;
          Alcotest.test_case "nested sharded rejected" `Quick test_nested_sharded_rejected;
          Alcotest.test_case "shard-unavailable roundtrip" `Quick
            test_shard_unavailable_code_roundtrip;
          Alcotest.test_case "algorithm name" `Quick test_sharded_algorithm_name
        ] );
      ( "domains concurrency",
        [ Alcotest.test_case "schedule cache builds once" `Quick test_parallel_schedule_cache;
          Alcotest.test_case "registry counters lose nothing" `Quick
            test_parallel_registry_counters
        ] );
      ("chaos", [ Alcotest.test_case "kill-one-shard soak" `Quick test_chaos_soak ]);
      ( "load",
        [ Alcotest.test_case "parallel balanced under zipf" `Quick
            test_parallel_load_balanced_under_zipf;
          Alcotest.test_case "leaky skew visible" `Quick test_parallel_leaky_skew_is_visible;
          Alcotest.test_case "shard.co.load histogram" `Quick test_shard_load_histogram;
          Alcotest.test_case "wire metrics" `Quick test_wire_metrics
        ] )
    ]
